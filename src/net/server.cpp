#include "net/server.hpp"

#include <utility>

#include "net/wire.hpp"

namespace fasttrack::net {

namespace {

/** Accept-poll period: bounds how long stop() waits on the accept
 *  thread without requiring a cross-thread listener close. */
constexpr int kAcceptPollMs = 100;

/** Parse a hello payload. */
bool
parseHello(const Frame &frame, std::uint32_t &wire_version,
           std::uint32_t &schema, std::uint32_t &window)
{
    WireReader r(frame.payload);
    return r.u32(wire_version) && r.u32(schema) && r.u32(window) &&
           r.atEnd();
}

} // namespace

FrameServer::FrameServer(ServerConfig config, Handler handler)
    : config_(std::move(config)), handler_(std::move(handler))
{
}

FrameServer::~FrameServer()
{
    stop();
}

bool
FrameServer::start(std::string &error)
{
    if (running_.load(std::memory_order_acquire)) {
        error = "server already running";
        return false;
    }
    if (!listener_.open(config_.host, config_.port, error))
        return false;
    stopping_.store(false, std::memory_order_release);
    running_.store(true, std::memory_order_release);
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

std::uint16_t
FrameServer::boundPort() const
{
    return listener_.boundPort();
}

void
FrameServer::stop()
{
    if (!running_.exchange(false, std::memory_order_acq_rel))
        return;
    stopping_.store(true, std::memory_order_release);
    if (acceptThread_.joinable())
        acceptThread_.join();
    listener_.close();

    // Shut down live session sockets so blocked reads see EOF, then
    // join. Session threads never close() their socket (only
    // shutdown), so these fds stay valid until the Sessions are
    // destroyed below, after every thread has been joined.
    std::vector<Session> sessions;
    {
        MutexLock lk(sessionsMutex_);
        sessions.swap(sessions_);
    }
    for (Session &s : sessions)
        if (s.socket)
            s.socket->shutdownBoth();
    for (Session &s : sessions)
        if (s.thread.joinable())
            s.thread.join();
}

ServerStats
FrameServer::stats() const
{
    ServerStats s;
    s.sessionsAccepted =
        sessionsAccepted_.load(std::memory_order_relaxed);
    s.sessionsRejected =
        sessionsRejected_.load(std::memory_order_relaxed);
    s.framesIn = framesIn_.load(std::memory_order_relaxed);
    s.framesOut = framesOut_.load(std::memory_order_relaxed);
    s.protocolErrors =
        protocolErrors_.load(std::memory_order_relaxed);
    s.idleTimeouts = idleTimeouts_.load(std::memory_order_relaxed);
    s.requestsServed =
        requestsServed_.load(std::memory_order_relaxed);
    s.injectedDrops = injectedDrops_.load(std::memory_order_relaxed);
    return s;
}

void
FrameServer::acceptLoop()
{
    while (!stopping_.load(std::memory_order_acquire) &&
           running_.load(std::memory_order_acquire)) {
        Socket accepted = listener_.accept(kAcceptPollMs);
        if (!accepted.valid())
            continue;
        reapSessions();
        if (activeSessions_.load(std::memory_order_acquire) >=
            config_.maxSessions) {
            sessionsRejected_.fetch_add(1,
                                        std::memory_order_relaxed);
            sendFrame(accepted,
                      makeErrorFrame(0, kErrOverloaded,
                                     "session limit reached"),
                      config_.ioTimeoutMs);
            continue; // destructor closes the socket
        }
        sessionsAccepted_.fetch_add(1, std::memory_order_relaxed);
        activeSessions_.fetch_add(1, std::memory_order_acq_rel);
        auto socket = std::make_shared<Socket>(std::move(accepted));
        auto done = std::make_shared<std::atomic<bool>>(false);
        std::thread thread(
            [this, socket, done] { runSession(socket, done); });
        MutexLock lk(sessionsMutex_);
        sessions_.push_back(
            Session{socket, done, std::move(thread)});
    }
}

void
FrameServer::reapSessions()
{
    // Joinable-but-finished threads cannot be detected portably, so
    // reap by the done flag (runSession's last act). Joining before
    // erasing makes the erase — and the Socket close it triggers —
    // single-threaded. stop() joins any stragglers.
    MutexLock lk(sessionsMutex_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
        if (it->done && it->done->load(std::memory_order_acquire)) {
            if (it->thread.joinable())
                it->thread.join();
            it = sessions_.erase(it);
        } else {
            ++it;
        }
    }
}

void
FrameServer::runSession(std::shared_ptr<Socket> socket,
                        std::shared_ptr<std::atomic<bool>> done)
{
    Socket &sock = *socket;
    const int idle_ms = config_.idleTimeoutMs;
    const int io_ms = config_.ioTimeoutMs;
    std::uint64_t responses_sent = 0;

    const auto protocolError = [&](std::uint64_t request_id,
                                   std::uint32_t code,
                                   const std::string &message) {
        protocolErrors_.fetch_add(1, std::memory_order_relaxed);
        sendFrame(sock, makeErrorFrame(request_id, code, message),
                  io_ms);
    };

    // --- Handshake -------------------------------------------------
    Frame hello;
    const FrameStatus hs = recvFrame(sock, hello, idle_ms, io_ms);
    bool handshaken = false;
    if (hs == FrameStatus::ok && hello.type == MessageType::hello) {
        std::uint32_t wire_version = 0, schema = 0, window = 0;
        if (!parseHello(hello, wire_version, schema, window)) {
            protocolError(hello.requestId, kErrBadRequest,
                          "malformed hello");
        } else if (wire_version != kWireVersion) {
            protocolError(hello.requestId, kErrBadVersion,
                          "wire version mismatch");
        } else if (schema != config_.schemaVersion) {
            protocolError(hello.requestId, kErrBadSchema,
                          "sweep schema mismatch");
        } else {
            framesIn_.fetch_add(1, std::memory_order_relaxed);
            Frame ack;
            ack.type = MessageType::helloAck;
            ack.requestId = hello.requestId;
            WireWriter w;
            w.u32(kWireVersion);
            w.u32(config_.schemaVersion);
            w.u32(window < config_.maxPending ? window
                                              : config_.maxPending);
            ack.payload = w.take();
            if (sendFrame(sock, ack, io_ms) == FrameStatus::ok) {
                framesOut_.fetch_add(1, std::memory_order_relaxed);
                handshaken = true;
            }
        }
    } else if (hs == FrameStatus::timeout) {
        idleTimeouts_.fetch_add(1, std::memory_order_relaxed);
    } else if (hs != FrameStatus::closed) {
        protocolError(0, kErrBadRequest,
                      std::string("expected hello, got ") +
                          toString(hs));
    }

    // --- Serve batches ---------------------------------------------
    while (handshaken && !stopping_.load(std::memory_order_acquire)) {
        std::vector<Frame> batch;
        bool session_over = false;

        // First frame of the batch: wait up to the idle timeout.
        // Then drain whatever is already pipelined, up to the
        // bounded queue — beyond that, TCP backpressure holds the
        // client until this batch is served.
        while (batch.size() < config_.maxPending) {
            const bool first = batch.empty();
            if (!first && !sock.readable())
                break;
            Frame frame;
            const FrameStatus status =
                recvMessage(sock, frame, first ? idle_ms : io_ms,
                            io_ms, config_.maxMessageBytes);
            if (status == FrameStatus::ok) {
                framesIn_.fetch_add(1, std::memory_order_relaxed);
                if (frame.type == MessageType::goodbye) {
                    session_over = true;
                    break;
                }
                if (frame.type != MessageType::sweepRequest &&
                    frame.type != MessageType::snapshotRequest) {
                    protocolError(frame.requestId, kErrBadRequest,
                                  "unexpected message type");
                    session_over = true;
                    break;
                }
                batch.push_back(std::move(frame));
                continue;
            }
            if (status == FrameStatus::closed && first) {
                session_over = true; // orderly EOF between frames
            } else if (status == FrameStatus::timeout && first) {
                idleTimeouts_.fetch_add(1,
                                        std::memory_order_relaxed);
                session_over = true;
            } else {
                protocolError(0, kErrBadRequest,
                              std::string("bad frame: ") +
                                  toString(status));
                session_over = true;
            }
            break;
        }

        if (!batch.empty()) {
            requestsServed_.fetch_add(batch.size(),
                                      std::memory_order_relaxed);
            std::vector<Frame> responses =
                handler_(std::move(batch));
            for (const Frame &response : responses) {
                if (config_.dropAfterFrames != 0 &&
                    responses_sent >= config_.dropAfterFrames) {
                    injectedDrops_.fetch_add(
                        1, std::memory_order_relaxed);
                    sock.shutdownBoth();
                    session_over = true;
                    break;
                }
                // sendMessage so an oversized snapshotResult payload
                // fragments instead of overflowing the frame cap.
                if (sendMessage(sock, response, io_ms) !=
                    FrameStatus::ok) {
                    session_over = true;
                    break;
                }
                ++responses_sent;
                framesOut_.fetch_add(1, std::memory_order_relaxed);
            }
        }
        if (session_over)
            break;
    }

    // Shut down (never close) so the peer sees EOF now; the close
    // happens when the Session is erased after join, keeping fd
    // writes out of this thread (stop() may still be poking the fd).
    sock.shutdownBoth();
    // Free the cap slot: maxSessions bounds *live* sessions, so the
    // decrement must happen here, not in reapSessions (which only
    // runs on the next accept and would leak slots until then).
    activeSessions_.fetch_sub(1, std::memory_order_acq_rel);
    done->store(true, std::memory_order_release);
}

} // namespace fasttrack::net
