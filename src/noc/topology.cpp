#include "noc/topology.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace fasttrack {

Topology::Topology(const NocConfig &config) : config_(config)
{
    config_.validate();
}

bool
Topology::hasExpressX(std::uint32_t x) const
{
    return config_.isFastTrack() && x % config_.r == 0;
}

bool
Topology::hasExpressY(std::uint32_t y) const
{
    return config_.isFastTrack() && y % config_.r == 0;
}

bool
Topology::wrapAligned() const
{
    return config_.isFastTrack() && config_.n % config_.d == 0;
}

RouterArch
Topology::kindAt(Coord c) const
{
    const bool ex = hasExpressX(c.x);
    const bool ey = hasExpressY(c.y);
    if (ex && ey) {
        return config_.variant == NocVariant::ftInject
                   ? RouterArch::ftInject
                   : RouterArch::ftFull;
    }
    if (ex || ey)
        return RouterArch::ftGrey;
    return RouterArch::hoplite;
}

Coord
Topology::eastShort(Coord c) const
{
    return Coord{static_cast<std::uint16_t>((c.x + 1) % n()), c.y};
}

Coord
Topology::eastExpress(Coord c) const
{
    FT_ASSERT(hasExpressX(c.x), "no X express link at ",
              coordToString(c));
    return Coord{static_cast<std::uint16_t>((c.x + d()) % n()), c.y};
}

Coord
Topology::southShort(Coord c) const
{
    return Coord{c.x, static_cast<std::uint16_t>((c.y + 1) % n())};
}

Coord
Topology::southExpress(Coord c) const
{
    FT_ASSERT(hasExpressY(c.y), "no Y express link at ",
              coordToString(c));
    return Coord{c.x, static_cast<std::uint16_t>((c.y + d()) % n())};
}

std::uint32_t
Topology::tracksPerRing() const
{
    return config_.isFastTrack() ? config_.d / config_.r + 1 : 1;
}

std::uint32_t
Topology::expressLinksPerRing() const
{
    if (!config_.isFastTrack())
        return 0;
    return (n() + r() - 1) / r();
}

std::uint32_t
Topology::ringHops(std::uint32_t pos, std::uint32_t delta,
                   bool express_dim) const
{
    if (!config_.isFastTrack() || !express_dim)
        return delta;
    // Ride short links k hops until aligned, then express the rest.
    // k + (delta - k)/D grows with k, so the first feasible k is best.
    for (std::uint32_t k = 0; k <= delta; ++k) {
        const std::uint32_t rem = delta - k;
        if (rem >= d() && rem % d() == 0 && (pos + k) % r() == 0)
            return k + rem / d();
    }
    return delta;
}

std::uint32_t
Topology::minimalHops(Coord src, Coord dst) const
{
    const std::uint32_t dx = ringDistance(src.x, dst.x, n());
    const std::uint32_t dy = ringDistance(src.y, dst.y, n());
    return ringHops(src.x, dx, true) + ringHops(src.y, dy, true);
}

} // namespace fasttrack
