#include "noc/routing.hpp"

namespace fasttrack {

// The routing policy itself (candidate builders) lives inline in
// routing.hpp so it can fold into the engine's stepping core; only the
// cold table construction and diagnostic helpers stay out of line.

void
CandidateTable::build(const RouterSite &site)
{
    const std::uint32_t d = site.d;
    // Representative distance per class. Classes 2/3 are unreachable
    // when d == 0 and class 1 when d == 1; their placeholder entries
    // are built but never indexed (classOf never yields them).
    const std::uint32_t rep[4] = {0, 1, d > 0 ? d : 2,
                                  d > 0 ? d + 1 : 3};

    for (std::size_t in = 0; in < 4; ++in) {
        for (std::uint8_t xc = 0; xc < 4; ++xc) {
            for (std::uint8_t yc = 0; yc < 4; ++yc) {
                route_[(in * 4 + xc) * 4 + yc] =
                    routeCandidates(site, static_cast<InPort>(in),
                                    rep[xc], rep[yc],
                                    /*express_class=*/false);
            }
        }
    }

    for (std::uint8_t xc = 0; xc < 4; ++xc) {
        for (std::uint8_t yc = 0; yc < 4; ++yc) {
            if (xc == 0 && yc == 0)
                continue; // self-addressed packets bypass the NoC
            bool express = false;
            inject_[static_cast<std::size_t>(xc) * 4 + yc] =
                injectCandidates(site, rep[xc], rep[yc], express);
            injectExpress_[static_cast<std::size_t>(xc) * 4 + yc] =
                express;
        }
    }

    cls_.resize(site.n);
    for (std::uint32_t delta = 0; delta < site.n; ++delta)
        cls_[delta] = classOf(delta, d);
}

const char *
toString(InPort p)
{
    switch (p) {
      case InPort::wEx: return "W_EX";
      case InPort::nEx: return "N_EX";
      case InPort::wSh: return "W_SH";
      case InPort::nSh: return "N_SH";
      case InPort::pe: return "PE";
    }
    return "?";
}

const char *
toString(OutPort p)
{
    switch (p) {
      case OutPort::eEx: return "E_EX";
      case OutPort::eSh: return "E_SH";
      case OutPort::sEx: return "S_EX";
      case OutPort::sSh: return "S_SH";
      case OutPort::none: return "none";
    }
    return "?";
}

} // namespace fasttrack
