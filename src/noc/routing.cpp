#include "noc/routing.hpp"

#include "common/logging.hpp"

namespace fasttrack {

const char *
toString(InPort p)
{
    switch (p) {
      case InPort::wEx: return "W_EX";
      case InPort::nEx: return "N_EX";
      case InPort::wSh: return "W_SH";
      case InPort::nSh: return "N_SH";
      case InPort::pe: return "PE";
    }
    return "?";
}

const char *
toString(OutPort p)
{
    switch (p) {
      case OutPort::eEx: return "E_EX";
      case OutPort::eSh: return "E_SH";
      case OutPort::sEx: return "S_EX";
      case OutPort::sSh: return "S_SH";
      case OutPort::none: return "none";
    }
    return "?";
}

void
CandidateList::push(OutPort out, bool exit)
{
    // Duplicate (port, exit) pairs are dropped, but an exit entry does
    // not shadow a later plain-forwarding entry on the same port: when
    // the client exit is unavailable the packet must still be able to
    // continue through that port.
    for (std::size_t i = 0; i < size_; ++i) {
        if (v_[i].out == out && v_[i].exit == exit)
            return;
    }
    FT_ASSERT(size_ < v_.size(), "candidate list overflow");
    v_[size_++] = Candidate{out, exit};
}

bool
CandidateList::contains(OutPort out) const
{
    for (std::size_t i = 0; i < size_; ++i) {
        if (v_[i].out == out)
            return true;
    }
    return false;
}

bool
physicallyReachable(const RouterSite &site, InPort in, OutPort out)
{
    // Port existence from depopulation.
    if ((out == OutPort::eEx && !site.hasEx) ||
        (out == OutPort::sEx && !site.hasEy)) {
        return false;
    }
    if ((in == InPort::wEx && !site.hasEx) ||
        (in == InPort::nEx && !site.hasEy)) {
        return false;
    }

    switch (site.variant) {
      case NocVariant::hoplite:
        return !isExpress(in) && !isExpress(out);

      case NocVariant::ftFull:
        switch (in) {
          case InPort::wEx:
            // Express continues E, or leaves at the turn (S_SH shared
            // exit) or stays express through the turn (S_EX).
            return out == OutPort::eEx || out == OutPort::sSh ||
                   out == OutPort::sEx;
          case InPort::nEx:
            // Express continues S (also the express exit tap), or
            // leaves/deflects East on either lane (N_EX -> E_SH is the
            // sanctioned transition; E_EX is the express deflection).
            return out == OutPort::sEx || out == OutPort::eSh ||
                   out == OutPort::eEx;
          case InPort::wSh:
          case InPort::nSh:
          case InPort::pe:
            return true; // full lane-change freedom
        }
        return false;

      case NocVariant::ftInject:
        // No lane crossing: express stays express, short stays short;
        // the PE can inject into either class.
        if (in == InPort::pe)
            return true;
        return isExpress(in) == isExpress(out);
    }
    return false;
}

bool
expressEligible(const RouterSite &site, bool x_dim, std::uint32_t delta)
{
    const bool ports = x_dim ? site.hasEx : site.hasEy;
    return ports && site.d > 0 && delta >= site.d &&
           delta % site.d == 0;
}

namespace {

/** Deflecting East onto the express lane keeps the packet aligned with
 *  the express network (it will return as a high-priority W_EX). */
bool
deflectExpressOk(const RouterSite &site, std::uint32_t dx)
{
    return site.hasEx && site.wrapAligned && site.d > 0 &&
           dx % site.d == 0;
}

/** Append every physically reachable output as a terminal fallback so
 *  the bufferless router can always forward. Short lanes first: they
 *  never break express alignment. */
void
appendPhysicalTail(const RouterSite &site, InPort in, CandidateList &c)
{
    static constexpr OutPort tail_order[] = {
        OutPort::eSh, OutPort::sSh, OutPort::eEx, OutPort::sEx};
    for (OutPort out : tail_order) {
        if (physicallyReachable(site, in, out))
            c.push(out);
    }
}

CandidateList
hopliteCandidates(InPort in, std::uint32_t dx, std::uint32_t dy)
{
    CandidateList c;
    if (dx > 0) {
        c.push(OutPort::eSh);
    } else if (dy > 0) {
        c.push(OutPort::sSh);
        c.push(OutPort::eSh); // classic N/W deflection East
    } else {
        c.push(OutPort::sSh, /*exit=*/true); // shared exit on S
        c.push(OutPort::eSh);
    }
    (void)in;
    return c;
}
// Note: the terminal physical tail is appended uniformly by
// routeCandidates so even exit-gated packets can always forward.

CandidateList
fullCandidates(const RouterSite &site, InPort in, std::uint32_t dx,
               std::uint32_t dy)
{
    const std::uint32_t d = site.d;
    CandidateList c;
    switch (in) {
      case InPort::wEx:
        if (dx >= d) {
            // Ride on (misaligned packets keep riding until the last
            // possible hop, then escape below).
            c.push(OutPort::eEx);
        } else if (dx > 0) {
            // Misaligned escape: early turn through the W_EX -> S_SH
            // mux; the packet re-enters the X ring from the N port.
            c.push(OutPort::sSh);
        } else if (dy == 0) {
            c.push(OutPort::sSh, /*exit=*/true);
        } else {
            if (site.allowExpressTurn && expressEligible(site, false, dy))
                c.push(OutPort::sEx);
            c.push(OutPort::sSh);
        }
        break;

      case InPort::nEx:
        if (dx > 0) {
            // Fallback-placed packet that still needs X progress:
            // rejoin the X ring (N_EX -> E_SH is the sanctioned turn).
            if (expressEligible(site, true, dx))
                c.push(OutPort::eEx);
            c.push(OutPort::eSh);
        } else if (dy == 0) {
            // Express exit tap shares the S_EX port.
            c.push(OutPort::sEx, /*exit=*/true);
            if (deflectExpressOk(site, dx))
                c.push(OutPort::eEx);
            c.push(OutPort::eSh);
        } else if (dy >= d && dy % d == 0) {
            c.push(OutPort::sEx);
            if (deflectExpressOk(site, dx))
                c.push(OutPort::eEx);
            c.push(OutPort::eSh);
        } else {
            // Misaligned or short remainder: sanctioned escape East on
            // the short lane, realign, and come back.
            c.push(OutPort::eSh);
        }
        break;

      case InPort::wSh:
        if (dx > 0) {
            if (site.allowUpgrade && expressEligible(site, true, dx))
                c.push(OutPort::eEx);
            c.push(OutPort::eSh);
        } else if (dy > 0) {
            if (site.allowUpgrade && expressEligible(site, false, dy))
                c.push(OutPort::sEx);
            c.push(OutPort::sSh);
            // Deflected turning W_SH may use E_EX and return as a
            // high-priority W_EX (paper Section IV-D).
            if (deflectExpressOk(site, dx))
                c.push(OutPort::eEx);
            c.push(OutPort::eSh);
        } else {
            c.push(OutPort::sSh, /*exit=*/true);
            if (deflectExpressOk(site, dx))
                c.push(OutPort::eEx);
            c.push(OutPort::eSh);
        }
        break;

      case InPort::nSh:
        if (dx > 0) {
            if (site.allowUpgrade && expressEligible(site, true, dx))
                c.push(OutPort::eEx);
            c.push(OutPort::eSh);
        } else if (dy > 0) {
            if (site.allowUpgrade && expressEligible(site, false, dy))
                c.push(OutPort::sEx);
            c.push(OutPort::sSh);
            c.push(OutPort::eSh); // classic N deflection East
        } else {
            c.push(OutPort::sSh, /*exit=*/true);
            c.push(OutPort::eSh);
        }
        break;

      case InPort::pe:
        FT_PANIC("PE handled by injectCandidates");
    }
    return c;
}

CandidateList
injectVariantCandidates(const RouterSite &site, InPort in,
                        std::uint32_t dx, std::uint32_t dy)
{
    const std::uint32_t d = site.d;
    CandidateList c;
    switch (in) {
      case InPort::wEx:
        if (dx >= d) {
            c.push(OutPort::eEx);
        } else if (dy == 0 && dx == 0) {
            c.push(OutPort::sEx, /*exit=*/true); // express exit tap
        } else if (site.hasEy) {
            c.push(OutPort::sEx); // turn within the express network
        }
        break;
      case InPort::nEx:
        // The East express deflection exists only where the router
        // actually has X express ports (depopulated sites do not).
        if (dy >= d && dy % d == 0) {
            c.push(OutPort::sEx);
            if (site.hasEx)
                c.push(OutPort::eEx);
        } else {
            c.push(OutPort::sEx, /*exit=*/dy == 0);
            if (site.hasEx)
                c.push(OutPort::eEx);
        }
        break;
      case InPort::wSh:
        if (dx > 0) {
            c.push(OutPort::eSh);
        } else if (dy > 0) {
            c.push(OutPort::sSh);
        } else {
            c.push(OutPort::sSh, /*exit=*/true);
            c.push(OutPort::eSh);
        }
        break;
      case InPort::nSh:
        if (dx > 0) {
            c.push(OutPort::eSh);
        } else if (dy > 0) {
            c.push(OutPort::sSh);
            c.push(OutPort::eSh);
        } else {
            c.push(OutPort::sSh, /*exit=*/true);
            c.push(OutPort::eSh);
        }
        break;
      case InPort::pe:
        FT_PANIC("PE handled by injectCandidates");
    }
    return c;
}

} // namespace

CandidateList
routeCandidates(const RouterSite &site, InPort in, std::uint32_t dx,
                std::uint32_t dy, bool express_class)
{
    FT_ASSERT(in != InPort::pe, "use injectCandidates for PE");
    CandidateList c;
    switch (site.variant) {
      case NocVariant::hoplite:
        c = hopliteCandidates(in, dx, dy);
        break;
      case NocVariant::ftFull:
        c = fullCandidates(site, in, dx, dy);
        break;
      case NocVariant::ftInject:
        (void)express_class;
        c = injectVariantCandidates(site, in, dx, dy);
        break;
    }
    appendPhysicalTail(site, in, c);
    return c;
}

CandidateList
injectCandidates(const RouterSite &site, std::uint32_t dx,
                 std::uint32_t dy, bool &express_class)
{
    CandidateList c;
    express_class = false;
    FT_ASSERT(dx > 0 || dy > 0, "self-addressed packets bypass the NoC");

    switch (site.variant) {
      case NocVariant::hoplite:
        c.push(dx > 0 ? OutPort::eSh : OutPort::sSh);
        break;

      case NocVariant::ftFull:
        if (dx > 0) {
            if (expressEligible(site, true, dx))
                c.push(OutPort::eEx);
            c.push(OutPort::eSh);
        } else {
            if (expressEligible(site, false, dy))
                c.push(OutPort::sEx);
            c.push(OutPort::sSh);
        }
        break;

      case NocVariant::ftInject: {
        // Express only when the whole journey, including the exit tap,
        // stays inside the express network: both distances multiples
        // of D, and the source row carries Y express links (the turn
        // and exit rows inherit alignment because R | D).
        const bool ok_x = dx == 0 || (site.hasEx && dx % site.d == 0);
        const bool ok_y = dy % site.d == 0;
        const bool whole_trip = site.hasEy && ok_x && ok_y;
        if (whole_trip) {
            express_class = true;
            c.push(dx > 0 ? OutPort::eEx : OutPort::sEx);
        } else {
            c.push(dx > 0 ? OutPort::eSh : OutPort::sSh);
        }
        break;
      }
    }
    return c;
}

} // namespace fasttrack
