#include "noc/multichannel.hpp"

#include <algorithm>

#include "check/invariants.hpp"
#include "common/logging.hpp"

namespace fasttrack {

std::unique_ptr<NocDevice>
makeNoc(const NocConfig &config, std::uint32_t channels)
{
    if (channels <= 1)
        return std::make_unique<Network>(config);
    return std::make_unique<MultiChannelNoc>(config, channels);
}

MultiChannelNoc::MultiChannelNoc(const NocConfig &config,
                                 std::uint32_t channels)
    : EngineCore(config.pes()), config_(config)
{
    FT_ASSERT(channels >= 1, "need at least one channel");
    config_.validate();
    const std::uint32_t nodes = config_.pes();
    offerChannel_.assign(nodes, -1);
    nextChannel_.assign(nodes, 0);
    exitUsed_.assign(nodes, false);

    for (std::uint32_t c = 0; c < channels; ++c) {
        auto net = std::make_unique<Network>(config_);
        net->setExitGate([this](NodeId node, const Packet &) {
            return !exitUsed_[node];
        });
        net->setDeliverCallback([this](const Packet &p, Cycle when) {
            // Self-addressed packets bypass the NoC and do not occupy
            // the shared client exit (mirrors single-channel Network
            // semantics, where self-delivery skips exit arbitration).
            if (p.src != p.dst) {
#if FT_CHECK_ENABLED
                // One delivery per client per cycle across channels.
                check::verifyExitExclusivity(exitUsed_[p.dst], p.dst,
                                             when);
#endif
                exitUsed_[p.dst] = true;
            }
            deliverToClient(p, when);
        });
        channels_.push_back(std::move(net));
    }
}

void
MultiChannelNoc::offer(const Packet &packet)
{
    FT_ASSERT(packet.src < offerChannel_.size(), "bad source node");
    if (packet.src == packet.dst) {
        // Local traffic: route through channel 0's self-delivery path.
        channels_[0]->offer(packet);
        return;
    }
    FT_ASSERT(offerChannel_[packet.src] < 0,
              "node ", packet.src, " already has a pending offer");
    const std::uint32_t c = nextChannel_[packet.src];
    channels_[c]->offer(packet);
    offerChannel_[packet.src] = static_cast<int>(c);
}

bool
MultiChannelNoc::hasPendingOffer(NodeId node) const
{
    FT_ASSERT(node < offerChannel_.size(), "bad node");
    return offerChannel_[node] >= 0;
}

void
MultiChannelNoc::step()
{
    std::fill(exitUsed_.begin(), exitUsed_.end(), false);

    // Rotate the channel evaluation order so no channel permanently
    // wins the shared exit.
    const std::uint32_t k = channelCount();
    for (std::uint32_t i = 0; i < k; ++i)
        channels_[(stepOrigin_ + i) % k]->step();
    stepOrigin_ = (stepOrigin_ + 1) % k;

    // Retarget offers that were not accepted to the next channel, so a
    // congested channel cannot starve injection while others are idle.
    for (NodeId node = 0; node < offerChannel_.size(); ++node) {
        int &held = offerChannel_[node];
        if (held < 0)
            continue;
        auto &ch = *channels_[static_cast<std::uint32_t>(held)];
        if (!ch.hasPendingOffer(node)) {
            // Accepted this cycle.
            nextChannel_[node] =
                (static_cast<std::uint32_t>(held) + 1) % k;
            held = -1;
            continue;
        }
        const Packet p = ch.withdrawOffer(node);
        const std::uint32_t c =
            (static_cast<std::uint32_t>(held) + 1) % k;
        channels_[c]->offer(p);
        held = static_cast<int>(c);
    }
    ++cycle_;
}

void
MultiChannelNoc::onDrainedQuiescent()
{
#if FT_CHECK_ENABLED
    for (const auto &ch : channels_) {
        if (ch->checker())
            ch->checker()->verifyQuiescent(ch->now());
    }
#endif
}

bool
MultiChannelNoc::quiescent() const
{
    for (const auto &ch : channels_) {
        if (!ch->quiescent())
            return false;
    }
    return true;
}

NocStats
MultiChannelNoc::aggregateStats() const
{
    NocStats total;
    for (const auto &ch : channels_)
        total.merge(ch->stats());
    return total;
}

std::uint64_t
MultiChannelNoc::linkCount() const
{
    return channels_[0]->linkCount() * channelCount();
}

} // namespace fasttrack
