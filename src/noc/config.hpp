/**
 * @file
 * User-facing configuration of one NoC instance: the FT(N^2, D, R)
 * topology parameters, the router variant, and routing policy knobs.
 */

#ifndef FT_NOC_CONFIG_HPP
#define FT_NOC_CONFIG_HPP

#include <cstdint>
#include <string>

#include "fpga/area_model.hpp"

namespace fasttrack {

/** Router/switching family of the whole NoC. */
enum class NocVariant
{
    /** Baseline bufferless deflection torus (Kapre & Gray). */
    hoplite,
    /** FastTrack with full routers: lane changes from any port. */
    ftFull,
    /** FastTrack lite: express entry only at PE injection, no lane
     *  crossing afterwards. */
    ftInject,
};

const char *toString(NocVariant variant);

/**
 * Configuration of an FT(N^2, D, R) NoC.
 *
 * Constraints checked by validate(): N >= 2; for FastTrack variants
 * 1 <= D <= N/2, R in [1, D] with R | D, and R | N when R > 1 (so the
 * express braid stays balanced across the torus wraparound); the
 * inject variant further needs D | N so deflected express packets
 * stay aligned with the express network (Section IV-D).
 */
struct NocConfig
{
    /** Side of the N x N torus. */
    std::uint32_t n = 8;
    /** Express link length in hops; ignored for hoplite. */
    std::uint32_t d = 2;
    /** Depopulation factor (1 = fully populated). */
    std::uint32_t r = 1;
    /** Switching family. */
    NocVariant variant = NocVariant::hoplite;
    /**
     * Allow W_EX -> S_EX turns inside full routers (stay on the fast
     * lanes through the corner). Ablation knob; on by default.
     */
    bool allowExpressTurn = true;
    /**
     * Allow short->express lane upgrades from the W/N ports of full
     * routers (Fig 8's "upgrade later"). Ablation knob; on by default.
     */
    bool allowUpgrade = true;
    /**
     * Use the paper's turn-priority livelock rule (W->S turns beat ring
     * traffic). Disabling reverts to naive straight-first priority and
     * exists only for the livelock ablation bench.
     */
    bool turnPriority = true;
    /**
     * Extra pipeline registers on every short link (Section V: "we
     * can also insert a configurable number of additional registers
     * along the NoC links if an even faster frequency is desired";
     * Section VII's HyperFlex discussion). Link latency becomes
     * 1 + stages cycles.
     */
    std::uint32_t shortLinkStages = 0;
    /** Extra pipeline registers on every express link. */
    std::uint32_t expressLinkStages = 0;

    bool isFastTrack() const { return variant != NocVariant::hoplite; }
    std::uint32_t pes() const { return n * n; }

    /** Abort with a user-facing error if the combination is invalid. */
    void validate() const;

    /** Express-link length as seen by the cost models (0 = none). */
    std::uint32_t costD() const { return isFastTrack() ? d : 0; }

    /** Implementation spec for the FPGA cost models. */
    NocSpec toSpec(std::uint32_t width = 256,
                   std::uint32_t channels = 1) const;

    std::string describe() const;

    /** Baseline Hoplite of side @p n. */
    static NocConfig hoplite(std::uint32_t n);
    /** FastTrack FT(n^2, d, r). */
    static NocConfig fastTrack(std::uint32_t n, std::uint32_t d,
                               std::uint32_t r,
                               NocVariant variant = NocVariant::ftFull);
};

} // namespace fasttrack

#endif // FT_NOC_CONFIG_HPP
