/**
 * @file
 * Shared engine scaffolding composed by every NocDevice
 * implementation: dense pending-offer registers, in-flight/pending
 * accounting, delivery measurement, the client delivery callback, the
 * drain loop, and the FT_CHECK hook plumbing. Before this existed each
 * of the five NoC variants (Network, MultiChannelNoc, SmartNetwork,
 * BufferedNetwork, VcTorusNetwork) re-implemented the same offer slot
 * management, self-delivery short-circuit, quiescence test and drain
 * loop; they now all derive from EngineCore and implement only their
 * own step() and topology queries.
 */

#ifndef FT_NOC_ENGINE_CORE_HPP
#define FT_NOC_ENGINE_CORE_HPP

#include <memory>
#include <vector>

#include "check/invariants.hpp"
#include "noc/noc_device.hpp"
#include "noc/packet.hpp"

namespace fasttrack {

/**
 * Common core of all NoC devices.
 *
 * State layout: pending offers live in a dense slab (one Packet slot
 * plus one occupancy byte per node) instead of
 * std::vector<std::optional<Packet>>, so the per-cycle scans in the
 * stepping cores stream over flat memory. Subclasses read the slab
 * directly through the protected members.
 */
class EngineCore : public NocDevice
{
  public:
    void setDeliverCallback(DeliverFn fn) override
    {
        deliver_ = std::move(fn);
    }

    /**
     * Offer a packet for injection at its source node. Self-addressed
     * packets are delivered immediately without entering the network.
     * A node can hold only one pending offer; the offer persists
     * across cycles until the router accepts it.
     */
    void offer(const Packet &packet) override;

    /** Whether @p node still has an un-injected pending offer. */
    bool hasPendingOffer(NodeId node) const override;

    /** Dense offer-slot occupancy backing hasPendingOffer. */
    const std::uint8_t *pendingOfferMask() const override
    {
        return offerMask_.data();
    }

    /** Withdraw an un-injected offer (multi-channel retargeting).
     *  Returns the packet; panics if no offer is pending. */
    Packet withdrawOffer(NodeId node);

    /** Run until no packets are in flight or pending, or @p max_cycles
     *  elapse. Returns true when fully drained. */
    bool drain(Cycle max_cycles) override;

    Cycle now() const override { return cycle_; }
    bool quiescent() const override
    {
        return inFlight_ == 0 && pendingOffers_ == 0;
    }

    NocStats &stats() { return stats_; }
    const NocStats &stats() const { return stats_; }
    NocStats statsSnapshot() const override { return stats_; }

    std::uint64_t inFlight() const { return inFlight_; }
    std::uint64_t pendingOffers() const { return pendingOffers_; }

    /**
     * Runtime invariant checker observing this device, or nullptr.
     * FT_CHECK builds of Network attach one automatically at
     * construction; tests may swap in a FailMode::record instance. The
     * hooks that feed it are compiled only when FT_CHECK_ENABLED is
     * set, so attaching a checker in a non-FT_CHECK build sees no
     * events.
     */
    check::InvariantChecker *checker() const { return checker_.get(); }
    void attachChecker(std::unique_ptr<check::InvariantChecker> c)
    {
        checker_ = std::move(c);
    }

  protected:
    /** @param nodes client count; sizes the offer slab. */
    explicit EngineCore(std::uint32_t nodes);

    /** Measurement bookkeeping for one delivery: in-flight count,
     *  delivered counter and the four latency/route histograms. The
     *  caller still owns checker/tracer/client notification order. */
    void recordDeliveryStats(const Packet &p, Cycle now);

    /** Invoke the client delivery callback, if any is registered. */
    void deliverToClient(const Packet &p, Cycle now)
    {
        if (deliver_)
            deliver_(p, now);
    }

    /** Hook run by drain() once the device reports quiescence (e.g.
     *  final checker verification). */
    virtual void onDrainedQuiescent() {}

    std::uint32_t nodes_ = 0;
    /** Dense pending-offer registers: slot per node... */
    std::vector<Packet> offerSlab_;
    /** ...and its occupancy byte (0 = empty, 1 = pending). */
    std::vector<std::uint8_t> offerMask_;

    NocStats stats_;
    std::unique_ptr<check::InvariantChecker> checker_;
    DeliverFn deliver_;
    Cycle cycle_ = 0;
    std::uint64_t inFlight_ = 0;
    std::uint64_t pendingOffers_ = 0;
};

} // namespace fasttrack

#endif // FT_NOC_ENGINE_CORE_HPP
