/**
 * @file
 * Virtual-channel torus baseline (OpenSMART class, Table I's top row):
 * input-queued router with per-port virtual channels, shortest-path
 * XY routing on a bidirectional torus, and dateline VC switching for
 * deadlock freedom on the wraparound rings. Completes the measured
 * baseline set: bufferless (Hoplite), mesh buffered (CONNECT class),
 * and VC torus (ASIC-style high-performance).
 */

#ifndef FT_NOC_VC_TORUS_HPP
#define FT_NOC_VC_TORUS_HPP

#include <array>
#include <deque>
#include <vector>

#include "noc/engine_core.hpp"

namespace fasttrack {

/** VC-buffered bidirectional-torus NoC behind the NocDevice API,
 *  composed over EngineCore's shared device scaffolding. */
class VcTorusNetwork : public EngineCore
{
  public:
    /**
     * @param n torus side.
     * @param vc_count virtual channels per input port (>= 2: the
     *        dateline scheme needs an escape VC).
     * @param fifo_depth packets per VC FIFO.
     */
    VcTorusNetwork(std::uint32_t n, std::uint32_t vc_count,
                   std::uint32_t fifo_depth);

    void step() override;
    const NocConfig &config() const override { return config_; }
    std::uint64_t linkCount() const override;
    std::uint32_t channelCount() const override { return 1; }

    std::uint32_t vcCount() const { return vcCount_; }
    /** Packets that switched to the escape VC at a dateline. */
    std::uint64_t datelineCrossings() const { return datelines_; }

  private:
    enum Port : std::uint8_t
    {
        north = 0,
        south = 1,
        east = 2,
        west = 3,
        local = 4,
        portCount = 5,
    };

    /** Shortest-direction XY output toward @p dst. */
    Port routeOutput(Coord here, Coord dst) const;
    NodeId neighbor(NodeId id, Port out) const;
    /** Does leaving @p id through @p out cross that ring's dateline? */
    bool crossesDateline(NodeId id, Port out) const;

    struct RouterState
    {
        /** [port][vc] input queues. */
        std::vector<std::array<std::deque<Packet>, portCount>> vcs;
        /** Round-robin pointer per output over (port, vc) requesters. */
        std::array<std::uint32_t, portCount> rr{};
    };

    NocConfig config_;
    std::uint32_t n_;
    std::uint32_t vcCount_;
    std::uint32_t fifoDepth_;
    std::vector<RouterState> routers_;
    std::uint64_t datelines_ = 0;
};

} // namespace fasttrack

#endif // FT_NOC_VC_TORUS_HPP
