#include "noc/network.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace fasttrack {

Network::Network(const NocConfig &config) : topo_(config)
{
#if FT_CHECK_ENABLED
    checker_ = std::make_unique<check::InvariantChecker>(
        check::geometryOf(topo_.config()));
#endif
    const std::uint32_t n = topo_.n();
    const std::uint32_t count = topo_.nodeCount();
    routers_.reserve(count);
    inputs_.resize(count);
    offers_.resize(count);
    targets_.resize(count);
    const Cycle max_latency =
        1 + std::max(config.shortLinkStages, config.expressLinkStages);
    pipe_.resize(max_latency + 1);
    linkTraversals_.resize(count);
    nodeCounters_.resize(count);

    for (std::uint32_t id = 0; id < count; ++id) {
        const Coord c = toCoord(id, n);
        routers_.emplace_back(topo_, c);

        auto &t = targets_[id];
        t[static_cast<std::size_t>(OutPort::eSh)] = {
            toNodeId(topo_.eastShort(c), n), InPort::wSh};
        t[static_cast<std::size_t>(OutPort::sSh)] = {
            toNodeId(topo_.southShort(c), n), InPort::nSh};
        if (topo_.hasExpressX(c.x)) {
            t[static_cast<std::size_t>(OutPort::eEx)] = {
                toNodeId(topo_.eastExpress(c), n), InPort::wEx};
        } else {
            t[static_cast<std::size_t>(OutPort::eEx)] = {kInvalidNode,
                                                         InPort::wEx};
        }
        if (topo_.hasExpressY(c.y)) {
            t[static_cast<std::size_t>(OutPort::sEx)] = {
                toNodeId(topo_.southExpress(c), n), InPort::nEx};
        } else {
            t[static_cast<std::size_t>(OutPort::sEx)] = {kInvalidNode,
                                                         InPort::nEx};
        }
    }
}

void
Network::offer(const Packet &packet)
{
    FT_ASSERT(packet.src < topo_.nodeCount(), "bad source node");
    FT_ASSERT(packet.dst < topo_.nodeCount(), "bad destination node");
    if (packet.src == packet.dst) {
        // Local traffic bypasses the NoC entirely.
        ++stats_.selfDelivered;
        Packet p = packet;
        p.injected = cycle_;
#if FT_CHECK_ENABLED
        if (checker_)
            checker_->onSelfDelivery(p, cycle_);
#endif
        if (deliver_)
            deliver_(p, cycle_);
        return;
    }
    auto &slot = offers_[packet.src];
    FT_ASSERT(!slot, "node ", packet.src, " already has a pending offer");
    slot = packet;
    ++pendingOffers_;
#if FT_CHECK_ENABLED
    if (checker_)
        checker_->onOffer(packet, cycle_);
#endif
}

bool
Network::hasPendingOffer(NodeId node) const
{
    FT_ASSERT(node < offers_.size(), "bad node");
    return offers_[node].has_value();
}

Packet
Network::withdrawOffer(NodeId node)
{
    FT_ASSERT(node < offers_.size(), "bad node");
    auto &slot = offers_[node];
    FT_ASSERT(slot, "no pending offer at node ", node);
    Packet p = *slot;
    slot.reset();
    --pendingOffers_;
#if FT_CHECK_ENABLED
    if (checker_)
        checker_->onWithdraw(node, cycle_);
#endif
    return p;
}

void
Network::step()
{
    const std::uint32_t count = topo_.nodeCount();
    for (std::uint32_t id = 0; id < count; ++id) {
        auto &in = inputs_[id];
        auto &offer = offers_[id];

        // Consult the external exit gate (multi-channel delivery
        // arbitration) once per router-cycle, using the first
        // at-destination packet as the candidate.
        bool gate = true;
        if (exitGate_) {
            for (const auto &slot : in) {
                if (slot && slot->dst == id) {
                    gate = exitGate_(id, *slot);
                    break;
                }
            }
        }

        Router::Result res =
            routers_[id].route(in, offer, gate, cycle_, stats_);
        // Inputs were consumed by the router this cycle.
        for (auto &slot : in)
            slot.reset();

        if (res.peAccepted) {
            FT_ASSERT(offer, "acceptance without an offer");
#if FT_CHECK_ENABLED
            if (checker_)
                checker_->onInject(*offer, id, cycle_);
#endif
            --pendingOffers_;
            ++inFlight_;
            ++nodeCounters_[id].injected;
            offer.reset();
        } else if (offer) {
            // Offer keeps waiting; latency accrues via created time.
            ++nodeCounters_[id].blockedCycles;
        }

        if (res.delivered) {
            Packet p = *res.delivered;
            FT_ASSERT(p.dst == id, "delivery at wrong node");
            --inFlight_;
            ++stats_.delivered;
            ++nodeCounters_[id].delivered;
            stats_.totalLatency.add(cycle_ - p.created);
            stats_.networkLatency.add(cycle_ - p.injected);
            stats_.hopCount.add(p.totalHops());
            stats_.deflectionCount.add(p.deflections);
#if FT_CHECK_ENABLED
            if (checker_)
                checker_->onDelivery(p, id, cycle_);
#endif
            if (tracer_)
                tracer_(p, id, OutPort::none, cycle_);
            if (deliver_)
                deliver_(p, cycle_);
        }

        for (std::size_t port = 0; port < kNumOutPorts; ++port) {
            if (!res.out[port])
                continue;
            const TransferTarget &t = targets_[id][port];
            FT_ASSERT(t.router != kInvalidNode,
                      "forward onto a non-existent link");
#if FT_CHECK_ENABLED
            if (checker_)
                checker_->onTraversal(*res.out[port], id,
                                      static_cast<OutPort>(port),
                                      cycle_);
#endif
            if (tracer_)
                tracer_(*res.out[port], id,
                        static_cast<OutPort>(port), cycle_);
            ++linkTraversals_[id][port];
            const Cycle lat = linkLatency(static_cast<OutPort>(port));
            auto &slot = pipe_[(cycle_ + lat) % pipe_.size()];
            slot.push_back(Arrival{t.router, t.port,
                                   std::move(*res.out[port])});
        }
    }

    // Land next cycle's arrivals in the routers' input registers.
    ++cycle_;
    auto &due = pipe_[cycle_ % pipe_.size()];
    for (Arrival &a : due) {
        auto &dst_slot =
            inputs_[a.router][static_cast<std::size_t>(a.port)];
        FT_ASSERT(!dst_slot, "link register collision");
        dst_slot = std::move(a.packet);
    }
    due.clear();

#if FT_CHECK_ENABLED
    if (checker_)
        checker_->onCycleEnd(cycle_, inFlight_, pendingOffers_);
#endif
}

Cycle
Network::linkLatency(OutPort out) const
{
    const NocConfig &cfg = topo_.config();
    return isExpress(out) ? 1 + cfg.expressLinkStages
                          : 1 + cfg.shortLinkStages;
}

bool
Network::drain(Cycle max_cycles)
{
    const Cycle limit = cycle_ + max_cycles;
    while (!quiescent() && cycle_ < limit)
        step();
#if FT_CHECK_ENABLED
    if (checker_ && quiescent())
        checker_->verifyQuiescent(cycle_);
#endif
    return quiescent();
}

std::uint64_t
Network::linkCount() const
{
    const std::uint64_t rings = 2ull * topo_.n();
    const std::uint64_t short_links = rings * topo_.n();
    const std::uint64_t express_links =
        rings * topo_.expressLinksPerRing();
    return short_links + express_links;
}

} // namespace fasttrack
