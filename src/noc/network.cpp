#include "noc/network.hpp"

#include "common/logging.hpp"

namespace fasttrack {

Network::Network(const NocConfig &config)
    : EngineCore(config.pes()), geo_(config)
{
#if FT_CHECK_ENABLED
    checker_ = std::make_unique<check::InvariantChecker>(
        check::geometryOf(geo_.config()));
#endif
    const std::uint32_t count = geo_.nodeCount();
    linkTraversals_.resize(count);
    nodeCounters_.resize(count);
    slab_.init(count, geo_.slabDepth());
}

template <bool HasGate, bool HasTracer, bool HasTelem>
void
Network::stepImpl()
{
    // Resolved once per cycle; every emit below goes through this
    // thread's private log (wait-free, see telemetry/sink.hpp).
    telemetry::ThreadLog *tlog = nullptr;
    if constexpr (HasTelem)
        tlog = &telemetry::installed()->local();
    (void)tlog;

    const std::uint32_t count = geo_.nodeCount();
    const std::uint32_t cur = slab_.frameOf(cycle_);
    // Landing frame per output lane, computed once per cycle.
    std::array<std::uint32_t, kNumOutPorts> dest_frame;
    for (std::size_t port = 0; port < kNumOutPorts; ++port)
        dest_frame[port] =
            slab_.frameOf(cycle_ + geo_.portLatency()[port]);

    /** Collects routeCore's outcome so the engine can emit checker,
     *  tracer and measurement events in the architected order
     *  (injection, delivery, then traversals by port index). */
    struct Sink
    {
        Network *net;
        std::uint32_t id;
        const std::uint32_t *dest_frame;
        /** Slab slot each forwarded packet landed in, by OutPort. */
        std::array<Packet *, kNumOutPorts> placed{};
        /** Delivered packet (points into the current slab row). */
        const Packet *delivered = nullptr;

        void forward(OutPort out, const Packet &p)
        {
            const auto idx = static_cast<std::size_t>(out);
            const TransferTarget &t = net->geo_.targets(id)[idx];
            FT_ASSERT(t.router != kInvalidNode,
                      "forward onto a non-existent link");
            placed[idx] = net->slab_.place(dest_frame[idx], t.router,
                                           t.port, p);
        }
        void deliver(InPort, const Packet &p) { delivered = &p; }
    };

    const std::vector<Router> &routers = geo_.routers();
    for (std::uint32_t id = 0; id < count; ++id) {
        const std::uint8_t in_mask = slab_.mask(cur, id);
        const bool has_offer = offerMask_[id] != 0;
        if (in_mask == 0 && !has_offer)
            continue; // idle router: nothing to arbitrate

        Sink sink{this, id, dest_frame.data(), {}, nullptr};
        const auto gate = [&](const Packet &p) {
            if constexpr (HasGate)
                return exitGate_(id, p);
            (void)p;
            return true;
        };

        // Deflections are attributed inside routeCore; snapshot the
        // per-port counters around the call to recover which input
        // ports lost arbitration this cycle.
        std::array<std::uint64_t, kNumInPorts> defl_before{};
        if constexpr (HasTelem)
            defl_before = stats_.deflectionsByPort;

        const bool pe_accepted = routers[id].routeCore(
            slab_.row(cur, id), in_mask,
            has_offer ? &offerSlab_[id] : nullptr, cycle_, stats_, gate,
            sink);

        if constexpr (HasTelem) {
            for (std::size_t in = 0; in < kNumInPorts; ++in) {
                const std::uint64_t d =
                    stats_.deflectionsByPort[in] - defl_before[in];
                if (d) {
                    FT_TELEM(HasTelem, tlog,
                             telemetry::EventKind::deflect, cycle_, id,
                             static_cast<std::uint8_t>(in), 0,
                             static_cast<std::uint16_t>(d));
                }
            }
        }

#if FT_CHECK_ENABLED
        {
            std::size_t check_inputs = 0;
            for (std::uint8_t m = in_mask; m;
                 m &= static_cast<std::uint8_t>(m - 1))
                ++check_inputs;
            std::size_t check_outputs = 0;
            for (const Packet *p : sink.placed) {
                if (p)
                    ++check_outputs;
            }
            const RouterSite &site = routers[id].site();
            check::verifyRouterResult(
                toCoord(id, geo_.topo().n()), check_inputs, has_offer,
                pe_accepted, check_outputs, sink.delivered != nullptr,
                sink.placed[static_cast<std::size_t>(OutPort::eEx)] &&
                    !site.hasEx,
                sink.placed[static_cast<std::size_t>(OutPort::sEx)] &&
                    !site.hasEy);
        }
#endif

        if (pe_accepted) {
#if FT_CHECK_ENABLED
            // The checker sees the original offer, before the router
            // stamped the injection cycle onto its copy.
            if (checker_)
                checker_->onInject(offerSlab_[id], id, cycle_);
#endif
            FT_TELEM(HasTelem, tlog, telemetry::EventKind::inject,
                     cycle_, id, telemetry::kNoPort, offerSlab_[id].id,
                     0);
            offerMask_[id] = 0;
            --pendingOffers_;
            ++inFlight_;
            ++nodeCounters_[id].injected;
        } else if (has_offer) {
            // Offer keeps waiting; latency accrues via created time.
            ++nodeCounters_[id].blockedCycles;
            FT_TELEM(HasTelem, tlog,
                     telemetry::EventKind::backlogStall, cycle_, id,
                     telemetry::kNoPort, offerSlab_[id].id, 0);
        }

        if (sink.delivered) {
            const Packet &p = *sink.delivered;
            FT_ASSERT(p.dst == id, "delivery at wrong node");
            recordDeliveryStats(p, cycle_);
            ++nodeCounters_[id].delivered;
#if FT_CHECK_ENABLED
            if (checker_)
                checker_->onDelivery(p, id, cycle_);
#endif
            if constexpr (HasTracer)
                tracer_(p, id, OutPort::none, cycle_);
            if constexpr (HasTelem) {
                const Cycle lat = cycle_ - p.created;
                FT_TELEM(HasTelem, tlog, telemetry::EventKind::eject,
                         cycle_, id, telemetry::kNoPort, p.id,
                         static_cast<std::uint16_t>(
                             std::min<Cycle>(lat, 0xffff)));
            }
            deliverToClient(p, cycle_);
        }

        for (std::size_t port = 0; port < kNumOutPorts; ++port) {
            const Packet *p = sink.placed[port];
            if (!p)
                continue;
#if FT_CHECK_ENABLED
            if (checker_)
                checker_->onTraversal(*p, id,
                                      static_cast<OutPort>(port),
                                      cycle_);
#endif
            if constexpr (HasTracer)
                tracer_(*p, id, static_cast<OutPort>(port), cycle_);
            if constexpr (HasTelem) {
                const auto kind =
                    isExpress(static_cast<OutPort>(port))
                        ? telemetry::EventKind::expressHop
                        : telemetry::EventKind::route;
                FT_TELEM(HasTelem, tlog, kind, cycle_, id,
                         static_cast<std::uint8_t>(port), p->id, 0);
            }
            ++linkTraversals_[id][port];
        }

        // This router's inputs are consumed; forwards all landed in
        // future frames, so clearing cannot erase a new arrival.
        slab_.clearMask(cur, id);
    }

    ++cycle_;
#if FT_CHECK_ENABLED
    if (checker_)
        checker_->onCycleEnd(cycle_, inFlight_, pendingOffers_);
#endif
}

template <bool HasTelem>
void
Network::dispatchStep()
{
    if (exitGate_) {
        if (tracer_)
            stepImpl<true, true, HasTelem>();
        else
            stepImpl<true, false, HasTelem>();
    } else {
        if (tracer_)
            stepImpl<false, true, HasTelem>();
        else
            stepImpl<false, false, HasTelem>();
    }
}

void
Network::step()
{
    // One relaxed atomic load per cycle is the entire cost of the
    // telemetry hook when no sink is installed.
    if (telemetry::installed())
        dispatchStep<true>();
    else
        dispatchStep<false>();
}

void
Network::onDrainedQuiescent()
{
#if FT_CHECK_ENABLED
    if (checker_)
        checker_->verifyQuiescent(cycle_);
#endif
}

} // namespace fasttrack
