#include "noc/geometry.hpp"

#include <algorithm>
#include <memory>

namespace fasttrack {

EngineGeometry::EngineGeometry(const NocConfig &config) : topo_(config)
{
    const std::uint32_t n = topo_.n();
    const std::uint32_t count = topo_.nodeCount();
    routers_.reserve(count);
    targets_.resize(count);

    const Cycle short_lat = 1 + config.shortLinkStages;
    const Cycle express_lat = 1 + config.expressLinkStages;
    portLatency_[static_cast<std::size_t>(OutPort::eEx)] = express_lat;
    portLatency_[static_cast<std::size_t>(OutPort::sEx)] = express_lat;
    portLatency_[static_cast<std::size_t>(OutPort::eSh)] = short_lat;
    portLatency_[static_cast<std::size_t>(OutPort::sSh)] = short_lat;
    slabDepth_ = static_cast<std::uint32_t>(
        std::max(short_lat, express_lat) + 1);

    // At most four distinct sites exist on the torus (express-x and
    // express-y presence); all routers of a kind share one candidate
    // table instead of each building its own.
    std::array<std::shared_ptr<const CandidateTable>, 4> tables{};
    const auto tableFor = [&](Coord c) {
        const std::size_t kind =
            (topo_.hasExpressX(c.x) ? 2u : 0u) +
            (topo_.hasExpressY(c.y) ? 1u : 0u);
        if (!tables[kind]) {
            auto t = std::make_shared<CandidateTable>();
            t->build(Router::siteFor(topo_, c));
            tables[kind] = std::move(t);
        }
        return tables[kind];
    };

    for (std::uint32_t id = 0; id < count; ++id) {
        const Coord c = toCoord(id, n);
        routers_.emplace_back(topo_, c, tableFor(c));

        auto &t = targets_[id];
        t[static_cast<std::size_t>(OutPort::eSh)] = {
            toNodeId(topo_.eastShort(c), n), InPort::wSh};
        t[static_cast<std::size_t>(OutPort::sSh)] = {
            toNodeId(topo_.southShort(c), n), InPort::nSh};
        if (topo_.hasExpressX(c.x)) {
            t[static_cast<std::size_t>(OutPort::eEx)] = {
                toNodeId(topo_.eastExpress(c), n), InPort::wEx};
        } else {
            t[static_cast<std::size_t>(OutPort::eEx)] = {kInvalidNode,
                                                         InPort::wEx};
        }
        if (topo_.hasExpressY(c.y)) {
            t[static_cast<std::size_t>(OutPort::sEx)] = {
                toNodeId(topo_.southExpress(c), n), InPort::nEx};
        } else {
            t[static_cast<std::size_t>(OutPort::sEx)] = {kInvalidNode,
                                                         InPort::nEx};
        }
    }
}

std::uint64_t
EngineGeometry::linkCount() const
{
    const std::uint64_t rings = 2ull * topo_.n();
    const std::uint64_t short_links = rings * topo_.n();
    const std::uint64_t express_links =
        rings * topo_.expressLinksPerRing();
    return short_links + express_links;
}

} // namespace fasttrack
