#include "noc/vc_torus.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace fasttrack {

VcTorusNetwork::VcTorusNetwork(std::uint32_t n, std::uint32_t vc_count,
                               std::uint32_t fifo_depth)
    : EngineCore(n * n), n_(n), vcCount_(vc_count),
      fifoDepth_(fifo_depth)
{
    FT_ASSERT(n >= 2, "torus side must be >= 2");
    FT_ASSERT(vc_count >= 2,
              "dateline deadlock avoidance needs >= 2 VCs");
    FT_ASSERT(fifo_depth >= 1, "FIFO depth must be >= 1");
    config_ = NocConfig::hoplite(n); // size carrier for NocDevice
    routers_.resize(n * n);
    for (RouterState &router : routers_)
        router.vcs.resize(vcCount_);
}

VcTorusNetwork::Port
VcTorusNetwork::routeOutput(Coord here, Coord dst) const
{
    // Shortest direction per dimension, X before Y; ties go positive.
    if (here.x != dst.x) {
        const std::uint32_t east_dist = ringDistance(here.x, dst.x, n_);
        return east_dist <= n_ - east_dist ? east : west;
    }
    if (here.y != dst.y) {
        const std::uint32_t south_dist =
            ringDistance(here.y, dst.y, n_);
        return south_dist <= n_ - south_dist ? south : north;
    }
    return local;
}

NodeId
VcTorusNetwork::neighbor(NodeId id, Port out) const
{
    const Coord c = toCoord(id, n_);
    switch (out) {
      case north:
        return toNodeId({c.x, static_cast<std::uint16_t>(
                                  (c.y + n_ - 1) % n_)}, n_);
      case south:
        return toNodeId({c.x, static_cast<std::uint16_t>(
                                  (c.y + 1) % n_)}, n_);
      case east:
        return toNodeId({static_cast<std::uint16_t>((c.x + 1) % n_),
                         c.y}, n_);
      case west:
        return toNodeId({static_cast<std::uint16_t>(
                             (c.x + n_ - 1) % n_), c.y}, n_);
      default:
        return kInvalidNode;
    }
}

bool
VcTorusNetwork::crossesDateline(NodeId id, Port out) const
{
    const Coord c = toCoord(id, n_);
    switch (out) {
      case east:
        return c.x + 1u == n_; // wrap n-1 -> 0
      case west:
        return c.x == 0; // wrap 0 -> n-1
      case south:
        return c.y + 1u == n_;
      case north:
        return c.y == 0;
      default:
        return false;
    }
}

void
VcTorusNetwork::step()
{
    struct Move
    {
        NodeId from;
        Port in;
        std::uint32_t vc;
        NodeId to; ///< kInvalidNode = delivery
        Port to_in = local;
        std::uint32_t to_vc = 0;
    };
    std::vector<Move> moves;

    static constexpr Port kOpposite[] = {south, north, west, east,
                                         local};

    for (NodeId id = 0; id < routers_.size(); ++id) {
        RouterState &router = routers_[id];
        const Coord here = toCoord(id, n_);
        const std::uint32_t pairs = portCount * vcCount_;
        for (std::uint8_t out = 0; out < portCount; ++out) {
            const bool is_link = out != local;
            const NodeId to =
                is_link ? neighbor(id, static_cast<Port>(out))
                        : kInvalidNode;
            const Port to_in = is_link ? kOpposite[out] : local;
            const bool crossing =
                is_link && crossesDateline(id, static_cast<Port>(out));

            // Round-robin over (port, vc) requesters for this output.
            for (std::uint32_t scan = 0; scan < pairs; ++scan) {
                const std::uint32_t pair =
                    (router.rr[out] + scan) % pairs;
                const auto in = static_cast<Port>(pair % portCount);
                const std::uint32_t vc = pair / portCount;
                const auto &fifo = router.vcs[vc][in];
                if (fifo.empty())
                    continue;
                const Coord dst = toCoord(fifo.front().dst, n_);
                if (routeOutput(here, dst) != static_cast<Port>(out))
                    continue;
                std::uint32_t to_vc = 0;
                if (is_link) {
                    // Entering a new dimension restarts at VC0; the
                    // dateline bumps to the escape VC.
                    const bool entering_y =
                        (out == north || out == south) &&
                        (in == east || in == west || in == local);
                    const bool entering_x =
                        (out == east || out == west) && in == local;
                    to_vc = (entering_x || entering_y) ? 0 : vc;
                    if (crossing)
                        to_vc = std::min(to_vc + 1, vcCount_ - 1);
                    // Credit check against the target VC FIFO.
                    if (routers_[to].vcs[to_vc][to_in].size() >=
                        fifoDepth_) {
                        continue;
                    }
                }
                moves.push_back({id, in, vc, to, to_in, to_vc});
                router.rr[out] = (pair + 1) % pairs;
                break;
            }
        }
    }

    for (const Move &m : moves) {
        auto &fifo = routers_[m.from].vcs[m.vc][m.in];
        Packet p = std::move(fifo.front());
        fifo.pop_front();
        if (m.to == kInvalidNode) {
            recordDeliveryStats(p, cycle_);
            deliverToClient(p, cycle_);
        } else {
            if (m.to_vc > m.vc)
                ++datelines_;
            ++p.shortHops;
            ++stats_.shortHopTraversals;
            routers_[m.to].vcs[m.to_vc][m.to_in].push_back(
                std::move(p));
        }
    }

    // Client injection into VC0 of the local port.
    for (NodeId id = 0; id < routers_.size(); ++id) {
        if (!offerMask_[id])
            continue;
        auto &fifo = routers_[id].vcs[0][local];
        if (fifo.size() >= fifoDepth_) {
            ++stats_.injectionBlockedCycles;
            continue;
        }
        Packet p = offerSlab_[id];
        p.injected = cycle_;
        fifo.push_back(std::move(p));
        offerMask_[id] = 0;
        --pendingOffers_;
        ++inFlight_;
        ++stats_.injected;
    }

    ++cycle_;
}

std::uint64_t
VcTorusNetwork::linkCount() const
{
    // Bidirectional torus: 4 links per router (2 out per dimension).
    return 4ull * n_ * n_;
}

} // namespace fasttrack
