#include "noc/config.hpp"

#include "common/logging.hpp"

namespace fasttrack {

const char *
toString(NocVariant variant)
{
    switch (variant) {
      case NocVariant::hoplite: return "hoplite";
      case NocVariant::ftFull: return "ft-full";
      case NocVariant::ftInject: return "ft-inject";
    }
    return "?";
}

void
NocConfig::validate() const
{
    if (n < 2)
        FT_FATAL("NoC side must be >= 2, got ", n);
    if (shortLinkStages > 8 || expressLinkStages > 8)
        FT_FATAL("more than 8 extra link stages is not meaningful");
    if (!isFastTrack())
        return;
    if (d < 1 || d > n / 2)
        FT_FATAL("express length D must be in [1, N/2]: D=", d, " N=", n);
    if (r < 1 || r > d)
        FT_FATAL("depopulation R must be in [1, D]: R=", r, " D=", d);
    if (d % r != 0) {
        FT_FATAL("R must divide D so express links chain through "
                 "express-capable routers: R=", r, " D=", d);
    }
    if (r > 1 && n % r != 0) {
        FT_FATAL("depopulated NoCs need R | N so the express braid "
                 "stays balanced across the torus wraparound: R=", r,
                 " N=", n);
    }
    if (variant == NocVariant::ftInject && n % d != 0) {
        FT_FATAL("inject-only FastTrack needs D | N so deflected "
                 "express packets realign: D=", d, " N=", n);
    }
}

NocSpec
NocConfig::toSpec(std::uint32_t width, std::uint32_t channels) const
{
    NocSpec spec;
    spec.n = n;
    spec.width = width;
    spec.d = costD();
    spec.r = r;
    spec.injectOnly = variant == NocVariant::ftInject;
    spec.channels = channels;
    spec.shortLinkStages = shortLinkStages;
    spec.expressLinkStages = expressLinkStages;
    return spec;
}

std::string
NocConfig::describe() const
{
    if (!isFastTrack())
        return "Hoplite " + std::to_string(n) + "x" + std::to_string(n);
    std::string name =
        variant == NocVariant::ftInject ? "FTlite(" : "FT(";
    return name + std::to_string(pes()) + "," + std::to_string(d) + "," +
           std::to_string(r) + ")";
}

NocConfig
NocConfig::hoplite(std::uint32_t n)
{
    NocConfig cfg;
    cfg.n = n;
    cfg.variant = NocVariant::hoplite;
    cfg.validate();
    return cfg;
}

NocConfig
NocConfig::fastTrack(std::uint32_t n, std::uint32_t d, std::uint32_t r,
                     NocVariant variant)
{
    NocConfig cfg;
    cfg.n = n;
    cfg.d = d;
    cfg.r = r;
    cfg.variant = variant;
    cfg.validate();
    return cfg;
}

} // namespace fasttrack
