/**
 * @file
 * The NoC packet. Hoplite-family NoCs route whole packets (one wide
 * flit) per cycle, so a packet is a header plus bookkeeping; payload
 * width only matters to the FPGA cost models.
 */

#ifndef FT_NOC_PACKET_HPP
#define FT_NOC_PACKET_HPP

#include <cstdint>

#include "common/types.hpp"

namespace fasttrack {

/** One single-flit NoC packet with measurement bookkeeping. */
struct Packet
{
    /** Unique id assigned at creation. */
    std::uint64_t id = 0;
    /** Source node. */
    NodeId src = kInvalidNode;
    /** Destination node. */
    NodeId dst = kInvalidNode;
    /** Cycle the packet was generated (entered the source queue). */
    Cycle created = 0;
    /** Cycle the packet won PE injection into the network. */
    Cycle injected = 0;
    /** User correlation tag (e.g. dataflow token id); opaque to NoC. */
    std::uint64_t tag = 0;

    // --- per-packet route accounting ---
    /** Short (nominal) link traversals so far. */
    std::uint16_t shortHops = 0;
    /** Express link traversals so far. */
    std::uint16_t expressHops = 0;
    /** Times this packet received a non-preferred output. */
    std::uint16_t deflections = 0;
    /** True when riding an express lane in inject-only NoCs. */
    bool expressClass = false;

    std::uint32_t totalHops() const
    {
        return static_cast<std::uint32_t>(shortHops) + expressHops;
    }
};

} // namespace fasttrack

#endif // FT_NOC_PACKET_HPP
