/**
 * @file
 * Buffered baseline router (CONNECT/Split-Merge class, Section II-A):
 * a classic input-queued, XY-routed, credit-backpressured NoC on a
 * bidirectional mesh. The paper quotes published FPGA costs for these
 * designs (Table I); this model lets the Fig 1 bandwidth axis be
 * *measured* under identical traffic instead of quoted.
 *
 * Single-flit packets (as everywhere in this library) keep the router
 * exact without wormhole machinery: each input port holds a FIFO;
 * each cycle every output port grants one requesting input
 * round-robin, and a granted packet moves iff the downstream FIFO has
 * a free slot at the start of the cycle (conservative credits).
 * XY dimension order on a mesh is deadlock-free.
 */

#ifndef FT_NOC_BUFFERED_HPP
#define FT_NOC_BUFFERED_HPP

#include <array>
#include <deque>
#include <vector>

#include "noc/engine_core.hpp"

namespace fasttrack {

/** Input-buffered mesh NoC implementing the NocDevice interface
 *  through EngineCore's shared offer/drain/measurement scaffolding. */
class BufferedNetwork : public EngineCore
{
  public:
    /**
     * @param n mesh side.
     * @param fifo_depth packets per input FIFO (>= 1).
     */
    BufferedNetwork(std::uint32_t n, std::uint32_t fifo_depth);

    void step() override;
    const NocConfig &config() const override { return config_; }
    std::uint64_t linkCount() const override;
    std::uint32_t channelCount() const override { return 1; }

    std::uint32_t fifoDepth() const { return fifoDepth_; }
    /** Total packets currently buffered in the network. */
    std::uint64_t buffered() const { return inFlight_; }

  private:
    /** Mesh ports. */
    enum Port : std::uint8_t
    {
        north = 0, ///< from/to y-1
        south = 1, ///< from/to y+1
        east = 2,  ///< from/to x+1
        west = 3,  ///< from/to x-1
        local = 4, ///< client
        portCount = 5,
    };

    /** XY route: output port toward dst from router at (x, y). */
    Port routeOutput(Coord here, Coord dst) const;
    /** Neighbour router id through @p out, or kInvalidNode off-mesh. */
    NodeId neighbor(NodeId id, Port out) const;

    struct RouterState
    {
        std::array<std::deque<Packet>, portCount> fifo;
        /** Round-robin grant pointer per output port. */
        std::array<std::uint8_t, portCount> rr{};
    };

    NocConfig config_; ///< for the NocDevice interface (n, hoplite tag)
    std::uint32_t n_;
    std::uint32_t fifoDepth_;
    std::vector<RouterState> routers_;
};

} // namespace fasttrack

#endif // FT_NOC_BUFFERED_HPP
