/**
 * @file
 * Static worst-case analysis of the deflection NoC under the paper's
 * turn-priority rule (Section IV-D, after HopliteRT [30]).
 *
 * For single-channel Hoplite with turn priority, the router gives W
 * traffic strict priority, so a packet in flight is only ever
 * deflected while on the N port, each deflection costs exactly one
 * full X-ring lap (it returns as top-priority W and then succeeds),
 * and at most one deflection can occur per southward step plus one at
 * the exit. That yields a closed-form in-flight bound; FastTrack's
 * extra lanes only add bounded escape laps, giving a conservative
 * multiplier.
 */

#ifndef FT_NOC_ANALYSIS_HPP
#define FT_NOC_ANALYSIS_HPP

#include "common/types.hpp"
#include "noc/config.hpp"

namespace fasttrack {

/**
 * Worst-case in-flight cycles (injection to delivery, excluding
 * source queueing) for a specific source/destination pair on a
 * single-channel Hoplite with the turn-priority rule:
 *   dx + dy + dy_plus_exit_deflections * N, all scaled by the
 * short-link latency when links are pipelined.
 */
Cycle hopliteWorstCaseInFlight(const NocConfig &config, Coord src,
                               Coord dst);

/** Network-wide worst case: max over all pairs = (N-1)(N+2) cycles
 *  for an unpipelined NoC. */
Cycle hopliteWorstCaseInFlight(const NocConfig &config);

/**
 * Conservative in-flight bound for FastTrack variants: the Hoplite
 * bound plus one express-escape lap per Y step (misaligned express
 * packets escape through an early turn and one extra ring lap).
 * Empirical worst cases sit well below this; property tests enforce
 * it.
 */
Cycle fastTrackWorstCaseInFlight(const NocConfig &config);

} // namespace fasttrack

#endif // FT_NOC_ANALYSIS_HPP
