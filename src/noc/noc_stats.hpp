/**
 * @file
 * Aggregate NoC measurement state: everything the paper's evaluation
 * section reports (sustained rate, latency distributions, link-class
 * usage, per-port deflections).
 */

#ifndef FT_NOC_NOC_STATS_HPP
#define FT_NOC_NOC_STATS_HPP

#include <array>
#include <cstdint>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "noc/routing.hpp"

namespace fasttrack {

/** Counters and distributions collected by a Network. */
struct NocStats
{
    /** Packets accepted into the network at a PE port. */
    std::uint64_t injected = 0;
    /** Packets delivered to their destination client. */
    std::uint64_t delivered = 0;
    /** Self-addressed packets short-circuited at the client. */
    std::uint64_t selfDelivered = 0;

    /** Link traversals by class (Fig 18a). */
    std::uint64_t shortHopTraversals = 0;
    std::uint64_t expressHopTraversals = 0;

    /** Deflections per input port (Fig 18b): the packet was assigned
     *  an output that was not its first choice. */
    std::array<std::uint64_t, kNumInPorts> deflectionsByPort{};
    /** Misroutes per input port: the packet left in a direction that
     *  makes no DOR progress (strict subset of deflections - a lane
     *  downgrade in the right direction is not a misroute). */
    std::array<std::uint64_t, kNumInPorts> misroutesByPort{};
    /** Subset of deflections where an express lane was preferred but a
     *  short lane was assigned. */
    std::uint64_t laneDeflections = 0;
    /** Packets at their destination that could not take the exit. */
    std::uint64_t exitBlocked = 0;
    /** Cycles any PE offer spent waiting for injection. */
    std::uint64_t injectionBlockedCycles = 0;

    /** delivered-cycle minus created-cycle (includes source queueing;
     *  Fig 12/16 metric). */
    Histogram totalLatency;
    /** delivered-cycle minus injected-cycle (pure network time). */
    Histogram networkLatency;
    /** Router traversals per delivered packet. */
    Histogram hopCount;
    /** Deflections per delivered packet. */
    Histogram deflectionCount;

    std::uint64_t totalDeflections() const;
    std::uint64_t totalMisroutes() const;

    /** Accumulate another stats block (multi-channel aggregation). */
    void merge(const NocStats &other);

    /** Packets per cycle per PE over @p cycles of simulated time. */
    double sustainedRate(std::uint32_t pes, Cycle cycles) const;

    /** Average toggling activity proxy for the power model: fraction
     *  of link-cycles carrying a packet, given the configured link
     *  count and elapsed cycles. */
    double linkActivity(std::uint64_t total_links, Cycle cycles) const;

    void reset();
};

} // namespace fasttrack

#endif // FT_NOC_NOC_STATS_HPP
