/**
 * @file
 * Replica-major batched lockstep engine: K independent replicas of
 * one NocConfig stepped by a single thread.
 *
 * A design-space sweep runs thousands of independent simulations of
 * identical geometry; stepping them one per core re-fetches the same
 * candidate tables and half-empty cache lines once per network.
 * BatchedEngine holds K replicas' link registers replica-major
 * (noc/batched_link_slab.hpp) and routes each router position for all
 * K lanes back to back (Router::routeLanes), so the per-router
 * geometry is fetched once per cycle instead of K times and the
 * independent lanes give the out-of-order core parallel work.
 *
 * Determinism contract: each lane executes exactly the scalar
 * arbitration (routeCore) on its own state, with its own offer slots,
 * statistics and in-flight accounting; a lane's NocStats snapshot is
 * bit-identical to a solo Network run fed the same offers at the same
 * cycles (tests/test_batched.cpp proves this per lane with
 * golden-stats FNV hashes). What the batched engine deliberately
 * omits relative to Network: delivery callbacks, exit gates, journey
 * tracers, telemetry, the FT_CHECK invariant checker, and the
 * per-node/per-link counters (nodeCounters, linkTraversals) — none of
 * which feed NocStats. Workloads needing any of those run on the
 * scalar Network; the sim layer picks accordingly (docs/engine.md).
 */

#ifndef FT_NOC_BATCHED_ENGINE_HPP
#define FT_NOC_BATCHED_ENGINE_HPP

#include <cstdint>
#include <vector>

#include "common/annotations.hpp"
#include "common/logging.hpp"
#include "noc/batched_link_slab.hpp"
#include "noc/config.hpp"
#include "noc/geometry.hpp"
#include "noc/noc_stats.hpp"
#include "noc/packet.hpp"

namespace fasttrack {

/** K lockstep replicas of one NocConfig (see file comment). */
class BatchedEngine
{
  public:
    /** Upper bound on lanes per batch; sized so one batch's hot state
     *  stays cache-resident at paper-scale geometries. */
    static constexpr std::uint32_t kMaxLanes = 32;

    BatchedEngine(const NocConfig &config, std::uint32_t lanes);

    std::uint32_t lanes() const { return lanes_; }
    std::uint32_t nodeCount() const { return geo_.nodeCount(); }
    const NocConfig &config() const { return geo_.config(); }
    const Topology &topology() const { return geo_.topo(); }
    Cycle now() const { return cycle_; }

    /**
     * Offer a packet for injection at its source node on @p lane.
     * Same contract as EngineCore::offer: self-addressed packets are
     * counted and dropped (no delivery callbacks exist here), and a
     * (lane, node) pair holds at most one pending offer, persisting
     * until the router accepts it.
     */
    FT_HOT void offer(std::uint32_t lane, const Packet &packet)
    {
        FT_ASSERT(lane < lanes_, "bad lane");
        FT_ASSERT(packet.src < geo_.nodeCount(), "bad source node");
        FT_ASSERT(packet.dst < geo_.nodeCount(),
                  "bad destination node");
        if (packet.src == packet.dst) {
            // Local traffic bypasses the NoC entirely.
            ++stats_[lane].selfDelivered;
            return;
        }
        std::uint8_t &m = offerMask_[offerIndex(packet.src, lane)];
        FT_ASSERT(!m, "lane ", lane, " node ", packet.src,
                  " already has a pending offer");
        offerSlab_[offerIndex(packet.src, lane)] = packet;
        m = 1;
        ++pendingOffers_[lane];
    }

    /** Whether (@p lane, @p node) still has an un-injected offer. */
    FT_HOT bool hasPendingOffer(std::uint32_t lane, NodeId node) const
    {
        return offerMask_[offerIndex(node, lane)] != 0;
    }

    /** Whether @p lane has no packets in flight and no offers. */
    bool quiescent(std::uint32_t lane) const
    {
        return inFlight_[lane] == 0 && pendingOffers_[lane] == 0;
    }

    const NocStats &stats(std::uint32_t lane) const
    {
        return stats_[lane];
    }
    NocStats statsSnapshot(std::uint32_t lane) const
    {
        return stats_[lane];
    }

    std::uint64_t inFlight(std::uint32_t lane) const
    {
        return inFlight_[lane];
    }

    /** Advance all K lanes one clock cycle in lockstep. Lanes whose
     *  router has neither inputs nor a pending offer cost one byte
     *  read; fully idle routers are skipped for all lanes at once. */
    FT_HOT void step();

  private:
    /** Offer slots are replica-major ([node][lane]) so the stepping
     *  core reads one contiguous K-byte run per router. */
    std::size_t offerIndex(NodeId node, std::uint32_t lane) const
    {
        return static_cast<std::size_t>(node) * lanes_ + lane;
    }

    EngineGeometry geo_;
    BatchedLinkSlab slab_;
    std::uint32_t lanes_ = 0;

    /** Pending-offer registers, replica-major: [node][lane]. */
    std::vector<Packet> offerSlab_;
    std::vector<std::uint8_t> offerMask_;

    /** Per-lane measurement and accounting (lane == replica). */
    std::vector<NocStats> stats_;
    std::vector<std::uint64_t> inFlight_;
    std::vector<std::uint64_t> pendingOffers_;

    Cycle cycle_ = 0;
};

} // namespace fasttrack

#endif // FT_NOC_BATCHED_ENGINE_HPP
