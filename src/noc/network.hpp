/**
 * @file
 * The cycle-accurate NoC: routers, link registers, the two-phase
 * clock-edge update, PE injection offers and client deliveries.
 */

#ifndef FT_NOC_NETWORK_HPP
#define FT_NOC_NETWORK_HPP

#include <functional>
#include <vector>

#include "common/annotations.hpp"
#include "noc/config.hpp"
#include "noc/engine_core.hpp"
#include "noc/geometry.hpp"
#include "noc/link_slab.hpp"
#include "noc/noc_stats.hpp"
#include "noc/packet.hpp"
#include "noc/router.hpp"
#include "noc/topology.hpp"
#include "telemetry/sink.hpp"

namespace fasttrack {

/**
 * One Hoplite/FastTrack network instance.
 *
 * Usage per cycle: clients call offer() (at most one pending packet
 * per node; re-offering while pending is an error), then step() once.
 * Accepted offers disappear from the pending set; deliveries invoke
 * the delivery callback. Bit-identical across runs: no internal
 * randomness, fixed router evaluation order.
 *
 * Engine layout: offer/accounting/measurement scaffolding comes from
 * EngineCore; the routing geometry (routers, candidate tables, link
 * landing sites and latencies) is an EngineGeometry shared in shape
 * with the batched lockstep engine (noc/batched_engine.hpp); the link
 * registers live in a dense LinkSlab frame ring rather than
 * per-router std::optional slots, and step() dispatches to a stepping
 * core templated on whether an exit gate, a journey tracer and a
 * telemetry sink are attached, so the common no-hook path compiles
 * with all three folded out entirely (see docs/engine.md and
 * docs/observability.md).
 */
class Network : public EngineCore
{
  public:
    explicit Network(const NocConfig &config);

    using DeliverFn = NocDevice::DeliverFn;
    /** External per-cycle exit permission (multi-channel arbitration).
     *  Consulted when a specific packet attempts to exit, so the
     *  queried packet is always the one arbitration actually chose;
     *  must be pure within a cycle. */
    using ExitGate = std::function<bool(NodeId, const Packet &)>;
    /** Observer of every router traversal: (packet, router, output
     *  port it left on, cycle). OutPort::none marks a delivery. Debug
     *  aid; adds one call per traversal when set. */
    using TraceFn = std::function<void(const Packet &, NodeId, OutPort,
                                       Cycle)>;

    void setExitGate(ExitGate gate) { exitGate_ = std::move(gate); }
    void setJourneyTracer(TraceFn fn) { tracer_ = std::move(fn); }

    /** Advance one clock cycle. */
    void step() override;

    const Topology &topology() const { return geo_.topo(); }
    const NocConfig &config() const override { return geo_.config(); }

    /** Total physical links (short + express), for activity metrics. */
    std::uint64_t linkCount() const override
    {
        return geo_.linkCount();
    }
    std::uint32_t channelCount() const override { return 1; }

    /** Per-link traversal counts: [router][OutPort] packets that left
     *  that router on that link. Feed of the utilization heatmaps. */
    const std::vector<std::array<std::uint64_t, kNumOutPorts>> &
    linkTraversals() const
    {
        return linkTraversals_;
    }

    /** Per-node fairness counters. */
    struct NodeCounters
    {
        std::uint64_t injected = 0;
        std::uint64_t delivered = 0;
        /** Cycles this node's pending offer was refused. */
        std::uint64_t blockedCycles = 0;
    };
    const std::vector<NodeCounters> &nodeCounters() const
    {
        return nodeCounters_;
    }

    /** Checkpointing (noc/engine_state.hpp): capture the complete
     *  dynamic state, or replay one captured at the same geometry.
     *  Defined in engine_state.cpp so the stepping hot path and the
     *  cold snapshot machinery stay in separate translation units. */
    bool captureState(EngineState &out) const override;
    bool restoreState(const EngineState &st) override;

  private:
    /** The stepping core; step() picks the instantiation matching the
     *  attached hooks so the hot path pays for none it doesn't use.
     *  HasTelem tracks whether a telemetry sink is installed
     *  (telemetry::installed()); the disabled instantiation contains
     *  no telemetry code at all. */
    template <bool HasGate, bool HasTracer, bool HasTelem>
    FT_HOT void stepImpl();

    /** Gate/tracer dispatch for one compile-time telemetry flavor. */
    template <bool HasTelem> FT_HOT void dispatchStep();

    void onDrainedQuiescent() override;

    /** Routers, candidate tables, landing sites, link latencies. */
    EngineGeometry geo_;
    /** Dense link registers: ring of frames indexed by arrival cycle. */
    LinkSlab slab_;

    std::vector<std::array<std::uint64_t, kNumOutPorts>> linkTraversals_;
    std::vector<NodeCounters> nodeCounters_;
    TraceFn tracer_;
    ExitGate exitGate_;
};

} // namespace fasttrack

#endif // FT_NOC_NETWORK_HPP
