/**
 * @file
 * The cycle-accurate NoC: routers, link registers, the two-phase
 * clock-edge update, PE injection offers and client deliveries.
 */

#ifndef FT_NOC_NETWORK_HPP
#define FT_NOC_NETWORK_HPP

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "check/invariants.hpp"
#include "noc/config.hpp"
#include "noc/noc_device.hpp"
#include "noc/noc_stats.hpp"
#include "noc/packet.hpp"
#include "noc/router.hpp"
#include "noc/topology.hpp"

namespace fasttrack {

/**
 * One Hoplite/FastTrack network instance.
 *
 * Usage per cycle: clients call offer() (at most one pending packet
 * per node; re-offering while pending is an error), then step() once.
 * Accepted offers disappear from the pending set; deliveries invoke
 * the delivery callback. Bit-identical across runs: no internal
 * randomness, fixed router evaluation order.
 */
class Network : public NocDevice
{
  public:
    explicit Network(const NocConfig &config);

    using DeliverFn = NocDevice::DeliverFn;
    /** External per-cycle exit permission (multi-channel arbitration);
     *  must be pure within a cycle. */
    using ExitGate = std::function<bool(NodeId, const Packet &)>;
    /** Observer of every router traversal: (packet, router, output
     *  port it left on, cycle). OutPort::none marks a delivery. Debug
     *  aid; adds one call per traversal when set. */
    using TraceFn = std::function<void(const Packet &, NodeId, OutPort,
                                       Cycle)>;

    void setDeliverCallback(DeliverFn fn) override
    {
        deliver_ = std::move(fn);
    }
    void setExitGate(ExitGate gate) { exitGate_ = std::move(gate); }
    void setJourneyTracer(TraceFn fn) { tracer_ = std::move(fn); }

    /**
     * Offer a packet for injection at its source node. Self-addressed
     * packets are delivered immediately without entering the network.
     * A node can hold only one pending offer; the offer persists
     * across cycles until the router accepts it.
     */
    void offer(const Packet &packet) override;

    /** Whether @p node still has an un-injected pending offer. */
    bool hasPendingOffer(NodeId node) const override;

    /** Withdraw an un-injected offer (multi-channel retargeting).
     *  Returns the packet; panics if no offer is pending. */
    Packet withdrawOffer(NodeId node);

    /** Advance one clock cycle. */
    void step() override;

    /** Run until no packets are in flight or pending, or @p max_cycles
     *  elapse. Returns true when fully drained. */
    bool drain(Cycle max_cycles) override;

    Cycle now() const override { return cycle_; }
    std::uint64_t inFlight() const { return inFlight_; }
    std::uint64_t pendingOffers() const { return pendingOffers_; }
    bool quiescent() const override
    {
        return inFlight_ == 0 && pendingOffers_ == 0;
    }

    NocStats &stats() { return stats_; }
    const NocStats &stats() const { return stats_; }
    NocStats statsSnapshot() const override { return stats_; }
    const Topology &topology() const { return topo_; }
    const NocConfig &config() const override { return topo_.config(); }

    /** Total physical links (short + express), for activity metrics. */
    std::uint64_t linkCount() const override;
    std::uint32_t channelCount() const override { return 1; }

    /** Per-link traversal counts: [router][OutPort] packets that left
     *  that router on that link. Feed of the utilization heatmaps. */
    const std::vector<std::array<std::uint64_t, kNumOutPorts>> &
    linkTraversals() const
    {
        return linkTraversals_;
    }

    /**
     * Runtime invariant checker observing this network, or nullptr.
     * FT_CHECK builds attach one automatically at construction; tests
     * may swap in a FailMode::record instance. The hooks that feed it
     * are compiled only when FT_CHECK_ENABLED is set, so attaching a
     * checker in a non-FT_CHECK build sees no events.
     */
    check::InvariantChecker *checker() const { return checker_.get(); }
    void attachChecker(std::unique_ptr<check::InvariantChecker> c)
    {
        checker_ = std::move(c);
    }

    /** Per-node fairness counters. */
    struct NodeCounters
    {
        std::uint64_t injected = 0;
        std::uint64_t delivered = 0;
        /** Cycles this node's pending offer was refused. */
        std::uint64_t blockedCycles = 0;
    };
    const std::vector<NodeCounters> &nodeCounters() const
    {
        return nodeCounters_;
    }

  private:
    struct TransferTarget
    {
        std::uint32_t router;
        InPort port;
    };

    /** One in-flight link transfer, landing at a future cycle. */
    struct Arrival
    {
        std::uint32_t router;
        InPort port;
        Packet packet;
    };

    /** Link latency in cycles for an output lane (1 + extra stages). */
    Cycle linkLatency(OutPort out) const;

    Topology topo_;
    std::vector<Router> routers_;
    /** Link registers: packet sitting at each router input. */
    std::vector<Router::Inputs> inputs_;
    /** Pipeline slots for multi-cycle links, indexed by
     *  cycle % pipe_.size(). Slot 0 depth is unused when all links
     *  are single-cycle. */
    std::vector<std::vector<Arrival>> pipe_;
    /** Pending injection offer per node. */
    std::vector<std::optional<Packet>> offers_;
    /** Precomputed landing site for each (router, OutPort). */
    std::vector<std::array<TransferTarget, kNumOutPorts>> targets_;

    std::vector<std::array<std::uint64_t, kNumOutPorts>> linkTraversals_;
    std::vector<NodeCounters> nodeCounters_;
    NocStats stats_;
    std::unique_ptr<check::InvariantChecker> checker_;
    DeliverFn deliver_;
    TraceFn tracer_;
    ExitGate exitGate_;
    Cycle cycle_ = 0;
    std::uint64_t inFlight_ = 0;
    std::uint64_t pendingOffers_ = 0;
};

} // namespace fasttrack

#endif // FT_NOC_NETWORK_HPP
