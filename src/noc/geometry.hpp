/**
 * @file
 * Per-configuration routing geometry shared by the stepping engines.
 *
 * Everything a cycle engine precomputes at construction — the router
 * objects with their shared candidate tables, the landing site of each
 * (router, output-port) link, the per-lane link latencies and the
 * frame-ring depth they imply — depends only on the NocConfig, not on
 * which engine steps it. Network (one replica) and BatchedEngine
 * (K replicas in lockstep) both build one EngineGeometry and read it
 * from their hot loops; extracting it guarantees the two engines can
 * never disagree about the wiring.
 */

#ifndef FT_NOC_GEOMETRY_HPP
#define FT_NOC_GEOMETRY_HPP

#include <array>
#include <vector>

#include "noc/config.hpp"
#include "noc/router.hpp"
#include "noc/topology.hpp"

namespace fasttrack {

/** Where a packet leaving a router on an output port lands. */
struct TransferTarget
{
    std::uint32_t router = kInvalidNode;
    InPort port = InPort::wSh;
};

/** Immutable per-config routing geometry (see file comment). */
class EngineGeometry
{
  public:
    explicit EngineGeometry(const NocConfig &config);

    const Topology &topo() const { return topo_; }
    const NocConfig &config() const { return topo_.config(); }
    std::uint32_t nodeCount() const { return topo_.nodeCount(); }

    const std::vector<Router> &routers() const { return routers_; }

    /** Landing sites of @p router, indexed by OutPort (kInvalidNode
     *  marks a non-existent express link at a depopulated site). */
    const std::array<TransferTarget, kNumOutPorts> &
    targets(std::uint32_t router) const
    {
        return targets_[router];
    }

    /** Link latency in cycles per output lane (1 + extra stages). */
    const std::array<Cycle, kNumOutPorts> &portLatency() const
    {
        return portLatency_;
    }

    /** Frame-ring depth a link slab needs: one frame per distinct
     *  landing offset plus the frame being consumed, so an in-flight
     *  write can never alias the current frame. */
    std::uint32_t slabDepth() const { return slabDepth_; }

    /** Total physical links (short + express) of one replica. */
    std::uint64_t linkCount() const;

  private:
    Topology topo_;
    std::vector<Router> routers_;
    std::vector<std::array<TransferTarget, kNumOutPorts>> targets_;
    std::array<Cycle, kNumOutPorts> portLatency_{};
    std::uint32_t slabDepth_ = 0;
};

} // namespace fasttrack

#endif // FT_NOC_GEOMETRY_HPP
