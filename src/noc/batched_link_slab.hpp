/**
 * @file
 * Replica-major link-register storage for the batched lockstep engine.
 *
 * Same frame-ring idea as LinkSlab (frame `cycle % depth` holds the
 * packets arriving at `cycle`; a forward with latency L writes frame
 * `(cycle + L) % depth`), but holding K independent replicas of the
 * same geometry side by side. Layout, outermost to innermost:
 *
 *     slots: [frame][router][lane][port]   (port row contiguous)
 *     masks: [frame][router][lane]         (lane row contiguous)
 *
 * The port index is innermost so one lane's four input slots form
 * exactly the `Packet *inputs` row Router::routeCore consumes; the
 * lane index sits directly above it so the K replicas of one router's
 * registers are adjacent in memory — when the batched engine steps
 * router r for lanes 0..K-1 back to back, the lanes share cache lines
 * and the per-router geometry (candidate table, landing targets) is
 * fetched once instead of K times. That replica-major adjacency is the
 * entire point of the batched engine; see docs/engine.md.
 */

#ifndef FT_NOC_BATCHED_LINK_SLAB_HPP
#define FT_NOC_BATCHED_LINK_SLAB_HPP

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/annotations.hpp"
#include "common/logging.hpp"
#include "common/types.hpp"
#include "noc/packet.hpp"
#include "noc/routing.hpp"

namespace fasttrack {

/** Contiguous (frame, router, lane, port)-indexed packet registers. */
class BatchedLinkSlab
{
  public:
    /** Input ports per router per lane (wEx, nEx, wSh, nSh). */
    static constexpr std::uint32_t kPorts = 4;

    void init(std::uint32_t routers, std::uint32_t depth,
              std::uint32_t lanes)
    {
        FT_ASSERT(depth >= 2, "slab needs at least a double buffer");
        FT_ASSERT(lanes >= 1, "slab needs at least one lane");
        routers_ = routers;
        depth_ = depth;
        lanes_ = lanes;
        slots_.resize(static_cast<std::size_t>(routers) * depth *
                      lanes * kPorts);
        // Eight padding bytes so the stepping core may read any mask
        // row with one 64-bit load; the padding is never written and
        // stays zero.
        masks_.assign(
            static_cast<std::size_t>(routers) * depth * lanes + 8, 0);
    }

    std::uint32_t depth() const { return depth_; }
    std::uint32_t lanes() const { return lanes_; }

    /** Frame index holding arrivals for @p cycle. */
    FT_HOT std::uint32_t frameOf(Cycle cycle) const
    {
        return static_cast<std::uint32_t>(cycle % depth_);
    }

    /** The four input-port slots of (@p router, @p lane) in @p frame. */
    FT_HOT Packet *row(std::uint32_t frame, std::uint32_t router,
                       std::uint32_t lane)
    {
        return slots_.data() +
               ((static_cast<std::size_t>(frame) * routers_ + router) *
                    lanes_ +
                lane) *
                   kPorts;
    }
    FT_HOT const Packet *row(std::uint32_t frame, std::uint32_t router,
                             std::uint32_t lane) const
    {
        return slots_.data() +
               ((static_cast<std::size_t>(frame) * routers_ + router) *
                    lanes_ +
                lane) *
                   kPorts;
    }

    /** All lanes' occupancy bytes of @p router in @p frame,
     *  contiguous: maskRow(f, r)[lane] is lane's bits. Lets the
     *  stepping core test "any lane has input?" with one streamed
     *  read per router. */
    FT_HOT const std::uint8_t *maskRow(std::uint32_t frame,
                                       std::uint32_t router) const
    {
        return masks_.data() +
               (static_cast<std::size_t>(frame) * routers_ + router) *
                   lanes_;
    }

    /** Occupancy bits of (@p router, @p lane) in @p frame. */
    FT_HOT std::uint8_t mask(std::uint32_t frame, std::uint32_t router,
                             std::uint32_t lane) const
    {
        return maskRow(frame, router)[lane];
    }
    FT_HOT void clearMask(std::uint32_t frame, std::uint32_t router,
                          std::uint32_t lane)
    {
        masks_[(static_cast<std::size_t>(frame) * routers_ + router) *
                   lanes_ +
               lane] = 0;
    }
    /** Clear every lane's occupancy byte of @p router in @p frame. */
    FT_HOT void clearMaskRow(std::uint32_t frame, std::uint32_t router)
    {
        std::memset(masks_.data() + (static_cast<std::size_t>(frame) *
                                         routers_ +
                                     router) *
                                        lanes_,
                    0, lanes_);
    }

    /**
     * Land @p p on (@p frame, @p router, @p lane, @p port), asserting
     * the single-driver rule (the slot must be empty). Returns the
     * placed slot.
     */
    FT_HOT Packet *place(std::uint32_t frame, std::uint32_t router,
                         std::uint32_t lane, InPort port,
                         const Packet &p)
    {
        std::uint8_t &m =
            masks_[(static_cast<std::size_t>(frame) * routers_ +
                    router) *
                       lanes_ +
                   lane];
        const auto bit = static_cast<std::uint8_t>(
            1u << static_cast<unsigned>(port));
        FT_ASSERT(!(m & bit), "link register collision");
        m = static_cast<std::uint8_t>(m | bit);
        Packet *slot =
            row(frame, router, lane) + static_cast<unsigned>(port);
        *slot = p;
        return slot;
    }

    /** Total occupied slots across all frames and lanes (debug aid). */
    std::uint64_t occupied() const
    {
        std::uint64_t total = 0;
        for (std::uint8_t m : masks_)
            total += static_cast<unsigned>(__builtin_popcount(m));
        return total;
    }

  private:
    std::vector<Packet> slots_;
    std::vector<std::uint8_t> masks_;
    std::uint32_t routers_ = 0;
    std::uint32_t depth_ = 0;
    std::uint32_t lanes_ = 0;
};

} // namespace fasttrack

#endif // FT_NOC_BATCHED_LINK_SLAB_HPP
