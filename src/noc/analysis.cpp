#include "noc/analysis.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace fasttrack {

Cycle
hopliteWorstCaseInFlight(const NocConfig &config, Coord src, Coord dst)
{
    FT_ASSERT(config.variant == NocVariant::hoplite,
              "bound derived for Hoplite; use "
              "fastTrackWorstCaseInFlight for FT variants");
    const std::uint32_t n = config.n;
    const Cycle dx = ringDistance(src.x, dst.x, n);
    const Cycle dy = ringDistance(src.y, dst.y, n);
    // X phase: W traffic is never deflected under turn priority.
    // Y phase: one possible deflection per southward step plus one at
    // the exit, each costing a full X-ring lap of N hops.
    const Cycle deflectable = (dx + dy == 0) ? 0 : dy + 1;
    const Cycle hops = dx + dy + deflectable * n;
    return hops * (1 + config.shortLinkStages);
}

Cycle
hopliteWorstCaseInFlight(const NocConfig &config)
{
    const auto far = static_cast<std::uint16_t>(config.n - 1);
    return hopliteWorstCaseInFlight(config, Coord{0, 0},
                                    Coord{far, far});
}

Cycle
fastTrackWorstCaseInFlight(const NocConfig &config)
{
    FT_ASSERT(config.isFastTrack(), "use the Hoplite bound");
    NocConfig hoplite_like = config;
    hoplite_like.variant = NocVariant::hoplite;
    const Cycle base = hopliteWorstCaseInFlight(hoplite_like);
    // Each Y step may additionally trigger one express-escape lap
    // (an N_EX deflection or early-turn recovery that re-circulates
    // a ring on the slower of the two lane classes).
    const Cycle lap =
        static_cast<Cycle>(config.n) *
        (1 + std::max(config.shortLinkStages, config.expressLinkStages));
    return base + static_cast<Cycle>(config.n) * lap;
}

} // namespace fasttrack
