/**
 * @file
 * Serializable engine state for checkpoint/restore.
 *
 * EngineState is the complete dynamic state of one single-channel
 * Network at a cycle boundary: the cycle counter, the pending-offer
 * slab, every occupied LinkSlab frame slot, and the measurement
 * block (NocStats, per-link traversal counts, per-node fairness
 * counters). Network::captureState fills one; restoreState replays
 * it into a freshly constructed device of the same geometry, after
 * which stepping continues bit-identically with the uninterrupted
 * run (tests/test_checkpoint.cpp pins this with golden FNV hashes).
 *
 * The wire codecs here (packet, histogram, NocStats, EngineState)
 * are explicit little-endian via net/wire.hpp, so snapshots are
 * host-portable exactly like sweep-cache payloads; the NocStats and
 * histogram codecs are the same ones sim/sweep_cache.cpp encodes
 * results with. Decoders bounds-check every field and cross-check
 * the occupancy masks against the packet list, so hostile input
 * degrades to a clean decode failure, never UB.
 *
 * trim() clears the measurement block while keeping the functional
 * state (packets, offers, cycle), which is the temporal-sharding
 * handoff the distributed fabric needs: a downstream daemon resumes
 * the traffic mid-flight but measures only its own slice
 * (docs/checkpoint.md).
 */

#ifndef FT_NOC_ENGINE_STATE_HPP
#define FT_NOC_ENGINE_STATE_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "net/wire.hpp"
#include "noc/noc_stats.hpp"
#include "noc/packet.hpp"

namespace fasttrack {

/** Complete dynamic state of one Network (see file comment). */
struct EngineState
{
    /** Per-node fairness counters (mirrors Network::NodeCounters). */
    struct NodeCounters
    {
        std::uint64_t injected = 0;
        std::uint64_t delivered = 0;
        std::uint64_t blockedCycles = 0;
    };

    /** Cycle counter at capture time. */
    Cycle cycle = 0;
    /** Geometry stamp: node count of the captured device. */
    std::uint32_t nodes = 0;
    /** Geometry stamp: LinkSlab frame-ring depth. */
    std::uint32_t slabDepth = 0;
    /** Pending offers as (node, packet) pairs, ascending by node. */
    std::vector<std::pair<NodeId, Packet>> offers;
    /** LinkSlab occupancy bytes, frame-major: [frame * nodes + node];
     *  only the low four bits (one per InPort) may be set. */
    std::vector<std::uint8_t> slabMasks;
    /** Occupied LinkSlab slots in (frame, node, port-bit) order; the
     *  masks say where each packet goes back. */
    std::vector<Packet> slabPackets;
    /** True when trim() cleared the measurement block below. */
    bool trimmed = false;
    NocStats stats;
    /** Per-link traversal counts, nodes * kNumOutPorts, row-major
     *  (empty when trimmed). */
    std::vector<std::uint64_t> linkTraversals;
    /** Per-node fairness counters (empty when trimmed). */
    std::vector<NodeCounters> nodeCounters;

    /** In-flight packet count implied by the slab contents. */
    std::uint64_t inFlight() const { return slabPackets.size(); }
    /** Pending-offer count implied by the offer list. */
    std::uint64_t pendingOffers() const { return offers.size(); }

    /**
     * Drop the measurement block (stats, traversal and fairness
     * counters) while keeping all functional state. A run restored
     * from a trimmed state replays the remaining traffic exactly but
     * reports statistics for its own slice only — the temporal-shard
     * handoff hook for the ftd fleet.
     */
    void trim();

    /** Internal consistency: masks/packets/offers agree and the
     *  measurement block matches the trimmed flag. Decoders call
     *  this; restoreState re-checks in case the caller built the
     *  state by hand. */
    bool consistent() const;
};

// --- shared wire codecs (explicit little-endian) ----------------------

/** Encode every Packet field (fixed 43-byte layout). */
void encodePacket(net::WireWriter &w, const Packet &p);
bool decodePacket(net::WireReader &r, Packet &p);

/** bin-count prefix + (value, count) pairs; decode rejects zero
 *  counts. */
void encodeHistogram(net::WireWriter &w, const Histogram &h);
bool decodeHistogram(net::WireReader &r, Histogram &h);

/** All NocStats counters then the four histograms — the exact field
 *  order the sweep cache has always persisted, so sweep payloads are
 *  byte-identical to pre-refactor blobs (no schema bump). */
void encodeNocStats(net::WireWriter &w, const NocStats &s);
bool decodeNocStats(net::WireReader &r, NocStats &s);

void encodeEngineState(net::WireWriter &w, const EngineState &st);
/** False on any malformed field, size overflow, or mask/packet
 *  disagreement; @p out is unspecified then. */
bool decodeEngineState(net::WireReader &r, EngineState &out);

} // namespace fasttrack

#endif // FT_NOC_ENGINE_STATE_HPP
