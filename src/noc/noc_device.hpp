/**
 * @file
 * Abstract client-side interface shared by Network and
 * MultiChannelNoc, so traffic generators, trace replay and the
 * dataflow engine drive either interchangeably.
 */

#ifndef FT_NOC_NOC_DEVICE_HPP
#define FT_NOC_NOC_DEVICE_HPP

#include <functional>
#include <memory>

#include "noc/config.hpp"
#include "noc/noc_stats.hpp"
#include "noc/packet.hpp"

namespace fasttrack {

struct EngineState;

/** What a NoC looks like to its clients. */
class NocDevice
{
  public:
    using DeliverFn = std::function<void(const Packet &, Cycle)>;

    virtual ~NocDevice() = default;

    virtual void setDeliverCallback(DeliverFn fn) = 0;
    /** Offer a packet at its source; at most one pending per node. */
    virtual void offer(const Packet &packet) = 0;
    virtual bool hasPendingOffer(NodeId node) const = 0;
    /**
     * Dense per-node pending-offer occupancy (entry non-zero = that
     * node's offer slot is taken), or nullptr when the device cannot
     * expose one (multi-channel devices track pending offers per
     * channel). Injectors probe every node every cycle; reading this
     * view replaces a virtual hasPendingOffer call per node. The
     * pointer is invalidated by device destruction only.
     */
    virtual const std::uint8_t *pendingOfferMask() const
    {
        return nullptr;
    }
    virtual void step() = 0;
    virtual bool drain(Cycle max_cycles) = 0;
    virtual Cycle now() const = 0;
    virtual bool quiescent() const = 0;
    virtual NocStats statsSnapshot() const = 0;
    virtual const NocConfig &config() const = 0;
    /** Total physical links across all channels. */
    virtual std::uint64_t linkCount() const = 0;
    virtual std::uint32_t channelCount() const = 0;

    /**
     * Capture the device's complete dynamic state for checkpointing
     * (noc/engine_state.hpp, sim/checkpoint.hpp). Default: the device
     * does not support snapshots (multi-channel and experimental
     * variants); only single-channel Network overrides this today.
     */
    virtual bool captureState(EngineState &) const { return false; }
    /** Replay a captured state; false when unsupported or when the
     *  state does not match this device's geometry. */
    virtual bool restoreState(const EngineState &) { return false; }
};

/**
 * Build a NoC device: a plain Network when @p channels == 1, a
 * MultiChannelNoc otherwise.
 */
std::unique_ptr<NocDevice> makeNoc(const NocConfig &config,
                                   std::uint32_t channels = 1);

} // namespace fasttrack

#endif // FT_NOC_NOC_DEVICE_HPP
