/**
 * @file
 * Single-router combinational arbitration: assign every in-flight
 * input packet (plus, lowest priority, the PE's offered packet) to a
 * distinct output port in one cycle, following the routing policy's
 * ordered candidate lists.
 */

#ifndef FT_NOC_ROUTER_HPP
#define FT_NOC_ROUTER_HPP

#include <array>
#include <memory>
#include <optional>

#include "common/annotations.hpp"
#include "common/logging.hpp"
#include "common/types.hpp"
#include "noc/noc_stats.hpp"
#include "noc/packet.hpp"
#include "noc/routing.hpp"
#include "noc/topology.hpp"

namespace fasttrack {

/**
 * One FastTrack/Hoplite router.
 *
 * The router itself is stateless between cycles (all state lives in
 * the network's link registers); this class caches the per-site
 * geometry facts and implements the priority-ordered greedy matching.
 * Greedy assignment always succeeds: each input's candidate list ends
 * with all physically reachable outputs, and at every router the
 * reachable-output count of the k-th priority input is at least k
 * (lane partitioning covers the inject variant).
 */
class Router
{
  public:
    /**
     * @param table precomputed candidate table for this router's site,
     *        shared across routers with identical geometry facts (a
     *        torus has at most four: express-x/express-y presence).
     *        When null the router builds a private copy.
     */
    Router(const Topology &topology, Coord pos,
           std::shared_ptr<const CandidateTable> table = nullptr);

    /** Geometry facts the routing policy needs at @p pos (also the key
     *  for sharing candidate tables between equivalent sites). */
    static RouterSite siteFor(const Topology &topology, Coord pos);

    /** Link-register contents feeding this router, indexed by InPort
     *  (wEx, nEx, wSh, nSh). */
    using Inputs = std::array<std::optional<Packet>, 4>;

    /** Outcome of one cycle of arbitration. */
    struct Result
    {
        /** Forwarded packet per output port, indexed by OutPort. */
        std::array<std::optional<Packet>, kNumOutPorts> out{};
        /** Packet delivered to the local client this cycle, if any. */
        std::optional<Packet> delivered;
        /** Input port the delivered packet arrived on. */
        InPort deliveredFrom = InPort::pe;
        /** Whether the PE's offered packet was accepted. */
        bool peAccepted = false;
    };

    /**
     * Route one cycle (optional-based convenience wrapper over
     * routeCore; tests and external callers use this form).
     * @param inputs in-flight packets on the four link inputs; consumed.
     * @param pe_offer packet the client wants to inject, if any.
     * @param exit_ok whether the client can accept a delivery this
     *        cycle (multi-channel NoCs arbitrate this externally).
     * @param now current cycle (stamped on accepted injections).
     * @param stats measurement sink.
     */
    Result route(Inputs &inputs, const std::optional<Packet> &pe_offer,
                 bool exit_ok, Cycle now, NocStats &stats) const;

    /**
     * The arbitration engine proper, parameterized at compile time on
     * the exit-gate policy and the output sink so the network's
     * stepping core can inline the whole router (no virtual calls, no
     * std::function, no optional churn on the hot path).
     *
     * @param inputs the router's four input-port packet registers
     *        (slab row); entries selected by @p input_mask are routed
     *        and mutated in place (hop/deflection bookkeeping). The
     *        caller clears the occupancy mask afterwards.
     * @param input_mask occupancy bits, bit i = InPort i holds a packet.
     * @param pe_offer packet the client wants to inject, or nullptr.
     *        Copied into a local before stamping: the local never
     *        aliases the link slab, so the optimizer keeps its fields
     *        in registers across the sink calls (measurably faster
     *        than stamping the offer slot in place).
     * @param now current cycle (stamped on accepted injections).
     * @param stats measurement sink.
     * @param exit_ok callable `bool(const Packet &)`: whether the
     *        client can accept *this* packet this cycle. Consulted at
     *        the moment a specific packet attempts the exit, so the
     *        gate decision always concerns the packet actually chosen
     *        by arbitration. Must be pure within a cycle.
     * @param sink receives the routing outcome:
     *        `sink.forward(OutPort, const Packet &)` for each packet
     *        leaving on a link (injections included) and
     *        `sink.deliver(InPort, const Packet &)` for a delivery to
     *        the local client.
     * @return whether the PE's offered packet was accepted.
     */
    template <typename Gate, typename Sink>
    FT_HOT bool routeCore(Packet *inputs, std::uint8_t input_mask,
                          const Packet *pe_offer, Cycle now,
                          NocStats &stats, Gate &&exit_ok,
                          Sink &&sink) const
    {
        std::array<bool, kNumOutPorts> taken{};
        bool exit_granted = false;
        bool pe_accepted = false;

        const auto distances = [&](const Packet &p, std::uint32_t &dx,
                                   std::uint32_t &dy) {
            // Reciprocal-multiply id -> (x, y) split; one hardware
            // divide per packet per cycle is measurable at scale.
            const std::uint32_t dst_x = divN_.mod(p.dst);
            const std::uint32_t dst_y = divN_.div(p.dst);
            dx = ringDistance(pos_.x, dst_x, n_);
            dy = ringDistance(pos_.y, dst_y, n_);
        };

        // DOR direction the packet ought to leave in; anything else is
        // a misroute (Fig 18's deflection semantics).
        enum class Dir { east, south, exit };
        const auto desiredDir = [](std::uint32_t dx, std::uint32_t dy) {
            if (dx > 0)
                return Dir::east;
            return dy > 0 ? Dir::south : Dir::exit;
        };
        const auto outDir = [](OutPort out) {
            return (out == OutPort::eEx || out == OutPort::eSh)
                       ? Dir::east
                       : Dir::south;
        };

        const auto assign = [&](InPort in, Packet &p, std::uint32_t dx,
                                std::uint32_t dy,
                                const CandidateList &cands) {
            const Dir want = desiredDir(dx, dy);
            for (std::size_t i = 0; i < cands.size(); ++i) {
                const Candidate &c = cands[i];
                if (c.exit) {
                    if (exit_granted || !exit_ok(p)) {
                        // Client exit unavailable: fall through to the
                        // deflection candidates.
                        ++stats.exitBlocked;
                        continue;
                    }
                    const auto idx = static_cast<std::size_t>(c.out);
                    if (taken[idx])
                        continue;
                    taken[idx] = true;
                    exit_granted = true;
                    if (i != 0) {
                        ++p.deflections;
                        ++stats.deflectionsByPort[static_cast<int>(in)];
                    }
                    sink.deliver(in, p);
                    return true;
                }
                const auto idx = static_cast<std::size_t>(c.out);
                if (taken[idx])
                    continue;
                taken[idx] = true;
                if (i != 0) {
                    ++p.deflections;
                    ++stats.deflectionsByPort[static_cast<int>(in)];
                    if (isExpress(cands[0].out) && !isExpress(c.out))
                        ++stats.laneDeflections;
                }
                if (outDir(c.out) != want)
                    ++stats.misroutesByPort[static_cast<int>(in)];
                if (isExpress(c.out)) {
                    ++p.expressHops;
                    ++stats.expressHopTraversals;
                } else {
                    ++p.shortHops;
                    ++stats.shortHopTraversals;
                }
                sink.forward(c.out, p);
                return true;
            }
            return false;
        };

        // In-flight packets first, in livelock-avoidance priority
        // order. With the paper's rule, turning W traffic beats ring
        // (N) traffic; the naive ablation order lets ring traffic win.
        static constexpr InPort kTurnFirst[] = {
            InPort::wEx, InPort::nEx, InPort::wSh, InPort::nSh};
        static constexpr InPort kRingFirst[] = {
            InPort::nEx, InPort::wEx, InPort::nSh, InPort::wSh};
        const auto &order = turnPriority_ ? kTurnFirst : kRingFirst;

        for (InPort in : order) {
            const auto slot = static_cast<std::size_t>(in);
            if (!(input_mask & (1u << slot)))
                continue;
            Packet &p = inputs[slot];
            std::uint32_t dx = 0, dy = 0;
            distances(p, dx, dy);
            const CandidateList &cands =
                table_->route(in, table_->cls(dx), table_->cls(dy));
            const bool ok = assign(in, p, dx, dy, cands);
            FT_ASSERT(ok, "router at ", coordToString(pos_),
                      " could not forward packet on ", toString(in));
        }

        // PE injection last, and only onto a productive output.
        if (pe_offer) {
            Packet p = *pe_offer;
            p.injected = now;
            std::uint32_t dx = 0, dy = 0;
            distances(p, dx, dy);
            const std::uint8_t dxc = table_->cls(dx);
            const std::uint8_t dyc = table_->cls(dy);
            const CandidateList &cands = table_->inject(dxc, dyc);
            p.expressClass = table_->injectExpress(dxc, dyc);
            for (std::size_t i = 0; i < cands.size(); ++i) {
                const auto idx =
                    static_cast<std::size_t>(cands[i].out);
                if (taken[idx])
                    continue;
                taken[idx] = true;
                if (isExpress(cands[i].out)) {
                    ++p.expressHops;
                    ++stats.expressHopTraversals;
                } else {
                    ++p.shortHops;
                    ++stats.shortHopTraversals;
                }
                sink.forward(cands[i].out, p);
                pe_accepted = true;
                ++stats.injected;
                break;
            }
            if (!pe_accepted)
                ++stats.injectionBlockedCycles;
        }

        return pe_accepted;
    }

    /**
     * Replica-major arbitration: route this router position for each
     * lockstep replica selected by @p lane_mask (bit i = lane i has
     * work), back to back. The per-site constants routeCore reads
     * (position, ring size, reciprocal divider, candidate table) are
     * loaded once and stay live across all lanes, and in the batched
     * slab successive lanes' input rows are adjacent in memory, so the
     * geometry fetch is amortized K ways instead of re-fetched per
     * replica. Idle lanes never enter the loop at all: the caller
     * builds the mask from the slab occupancy rows (one wide load per
     * eight lanes), and the ctz walk touches only the set bits.
     *
     * @p ctx supplies per-lane state and receives the outcome:
     *   - `ctx.inputMask(lane) -> uint8_t`  input occupancy bits
     *   - `ctx.inputs(lane) -> Packet *`    four-slot input row
     *   - `ctx.peOffer(lane) -> const Packet *`  offer or nullptr
     *   - `ctx.stats(lane) -> NocStats &`   lane's measurement sink
     *   - `ctx.gate(lane)`                  exit gate for this lane
     *   - `ctx.sink(lane)`                  forward/deliver receiver
     *   - `ctx.accepted(lane, bool)`        PE-offer outcome
     *
     * Determinism contract: each lane runs exactly the scalar
     * routeCore on its own state, so a lane's outcome is bit-identical
     * to a solo Network stepping the same replica (tests/test_batched
     * proves this per lane via golden-stats hashes).
     */
    template <typename Ctx>
    FT_HOT void routeLanes(std::uint32_t lane_mask, Ctx &&ctx,
                           Cycle now) const
    {
        while (lane_mask != 0) {
            const auto lane = static_cast<std::uint32_t>(
                __builtin_ctz(lane_mask));
            lane_mask &= lane_mask - 1;
            const std::uint8_t in_mask = ctx.inputMask(lane);
            const Packet *pe_offer = ctx.peOffer(lane);
            if (in_mask == 0 && pe_offer == nullptr)
                continue;
            const bool acc =
                routeCore(ctx.inputs(lane), in_mask, pe_offer, now,
                          ctx.stats(lane), ctx.gate(lane),
                          ctx.sink(lane));
            ctx.accepted(lane, acc);
        }
    }

    Coord pos() const { return pos_; }
    const RouterSite &site() const { return site_; }

  private:
    Coord pos_;
    std::uint32_t n_;
    RouterSite site_;
    bool turnPriority_;
    std::shared_ptr<const CandidateTable> table_;
    FastDiv divN_;
};

} // namespace fasttrack

#endif // FT_NOC_ROUTER_HPP
