/**
 * @file
 * Single-router combinational arbitration: assign every in-flight
 * input packet (plus, lowest priority, the PE's offered packet) to a
 * distinct output port in one cycle, following the routing policy's
 * ordered candidate lists.
 */

#ifndef FT_NOC_ROUTER_HPP
#define FT_NOC_ROUTER_HPP

#include <array>
#include <optional>

#include "common/types.hpp"
#include "noc/noc_stats.hpp"
#include "noc/packet.hpp"
#include "noc/routing.hpp"
#include "noc/topology.hpp"

namespace fasttrack {

/**
 * One FastTrack/Hoplite router.
 *
 * The router itself is stateless between cycles (all state lives in
 * the network's link registers); this class caches the per-site
 * geometry facts and implements the priority-ordered greedy matching.
 * Greedy assignment always succeeds: each input's candidate list ends
 * with all physically reachable outputs, and at every router the
 * reachable-output count of the k-th priority input is at least k
 * (lane partitioning covers the inject variant).
 */
class Router
{
  public:
    Router(const Topology &topology, Coord pos);

    /** Link-register contents feeding this router, indexed by InPort
     *  (wEx, nEx, wSh, nSh). */
    using Inputs = std::array<std::optional<Packet>, 4>;

    /** Outcome of one cycle of arbitration. */
    struct Result
    {
        /** Forwarded packet per output port, indexed by OutPort. */
        std::array<std::optional<Packet>, kNumOutPorts> out{};
        /** Packet delivered to the local client this cycle, if any. */
        std::optional<Packet> delivered;
        /** Input port the delivered packet arrived on. */
        InPort deliveredFrom = InPort::pe;
        /** Whether the PE's offered packet was accepted. */
        bool peAccepted = false;
    };

    /**
     * Route one cycle.
     * @param inputs in-flight packets on the four link inputs; consumed.
     * @param pe_offer packet the client wants to inject, if any.
     * @param exit_ok whether the client can accept a delivery this
     *        cycle (multi-channel NoCs arbitrate this externally).
     * @param now current cycle (stamped on accepted injections).
     * @param stats measurement sink.
     */
    Result route(Inputs &inputs, const std::optional<Packet> &pe_offer,
                 bool exit_ok, Cycle now, NocStats &stats) const;

    Coord pos() const { return pos_; }
    const RouterSite &site() const { return site_; }

  private:
    Coord pos_;
    std::uint32_t n_;
    RouterSite site_;
    bool turnPriority_;
};

} // namespace fasttrack

#endif // FT_NOC_ROUTER_HPP
