#include "noc/batched_engine.hpp"

#include <cstring>

namespace fasttrack {

BatchedEngine::BatchedEngine(const NocConfig &config,
                             std::uint32_t lanes)
    : geo_(config), lanes_(lanes)
{
    FT_ASSERT(lanes >= 1 && lanes <= kMaxLanes, "bad lane count ",
              lanes);
    const std::uint32_t count = geo_.nodeCount();
    slab_.init(count, geo_.slabDepth(), lanes);
    offerSlab_.resize(static_cast<std::size_t>(count) * lanes);
    // +8 zero padding bytes: the stepping core reads offer-mask rows
    // with 64-bit loads (same trick as BatchedLinkSlab::init).
    offerMask_.assign(static_cast<std::size_t>(count) * lanes + 8, 0);
    stats_.resize(lanes);
    inFlight_.assign(lanes, 0);
    pendingOffers_.assign(lanes, 0);
}

void
BatchedEngine::step()
{
    const std::uint32_t count = geo_.nodeCount();
    const std::uint32_t nlanes = lanes_;
    const std::uint32_t cur = slab_.frameOf(cycle_);
    // Landing frame per output lane, computed once per cycle and
    // shared by every lane (all replicas run the same geometry).
    std::array<std::uint32_t, kNumOutPorts> dest_frame;
    for (std::size_t port = 0; port < kNumOutPorts; ++port)
        dest_frame[port] =
            slab_.frameOf(cycle_ + geo_.portLatency()[port]);

    /** Always-open exit gate: batched runs never attach external
     *  delivery arbitration (those workloads use Network). */
    struct Gate
    {
        bool operator()(const Packet &) const { return true; }
    };

    /** Direct-commit sink for one (router, lane): forwards land in
     *  the slab immediately and deliveries are measured on the spot.
     *  There are no checker/tracer/telemetry consumers here, so no
     *  outcome needs to be staged the way Network's sink does. */
    struct Sink
    {
        BatchedEngine *eng;
        std::uint32_t id;
        std::uint32_t lane;
        const std::uint32_t *dest_frame;

        FT_HOT void forward(OutPort out, const Packet &p)
        {
            const auto idx = static_cast<std::size_t>(out);
            const TransferTarget &t = eng->geo_.targets(id)[idx];
            FT_ASSERT(t.router != kInvalidNode,
                      "forward onto a non-existent link");
            eng->slab_.place(dest_frame[idx], t.router, lane, t.port,
                            p);
        }
        FT_HOT void deliver(InPort, const Packet &p)
        {
            FT_ASSERT(p.dst == id, "delivery at wrong node");
            // Mirror of EngineCore::recordDeliveryStats, per lane.
            NocStats &s = eng->stats_[lane];
            --eng->inFlight_[lane];
            ++s.delivered;
            s.totalLatency.add(eng->cycle_ - p.created);
            s.networkLatency.add(eng->cycle_ - p.injected);
            s.hopCount.add(p.totalHops());
            s.deflectionCount.add(p.deflections);
        }
    };

    /** Per-lane state feed for Router::routeLanes at one router. */
    struct Ctx
    {
        BatchedEngine *eng;
        std::uint32_t id;
        const std::uint32_t *dest_frame;
        /** Lane 0's input row; lane rows are kPorts apart. */
        Packet *row0;
        const std::uint8_t *in_masks;
        std::uint8_t *offer_masks;
        Packet *offer_row;

        FT_HOT std::uint8_t inputMask(std::uint32_t lane) const
        {
            return in_masks[lane];
        }
        FT_HOT Packet *inputs(std::uint32_t lane) const
        {
            return row0 + static_cast<std::size_t>(lane) *
                              BatchedLinkSlab::kPorts;
        }
        FT_HOT const Packet *peOffer(std::uint32_t lane) const
        {
            return offer_masks[lane] ? offer_row + lane : nullptr;
        }
        FT_HOT NocStats &stats(std::uint32_t lane) const
        {
            return eng->stats_[lane];
        }
        FT_HOT Gate gate(std::uint32_t) const { return Gate{}; }
        FT_HOT Sink sink(std::uint32_t lane) const
        {
            return Sink{eng, id, lane, dest_frame};
        }
        FT_HOT void accepted(std::uint32_t lane, bool acc) const
        {
            if (!acc)
                return;
            offer_masks[lane] = 0;
            --eng->pendingOffers_[lane];
            ++eng->inFlight_[lane];
        }
    };

    // Occupancy scan constants: mask rows are read eight lanes at a
    // time with one 64-bit load (both buffers carry zero padding so
    // the load is always in bounds); when the lane count is not a
    // multiple of eight the last group keeps only its own bytes —
    // without the mask the load would pick up the next router's lanes.
    const std::uint32_t groups = (nlanes + 7) / 8;
    const std::uint64_t tail_keep =
        (nlanes & 7u) != 0
            ? (std::uint64_t{1} << ((nlanes & 7u) * 8)) - 1
            : ~std::uint64_t{0};

    for (std::uint32_t id = 0; id < count; ++id) {
        const std::uint8_t *in_masks = slab_.maskRow(cur, id);
        const std::uint8_t *offer_masks =
            offerMask_.data() + offerIndex(id, 0);
        if (id + 1 < count) {
            __builtin_prefetch(slab_.maskRow(cur, id + 1));
            __builtin_prefetch(offerMask_.data() +
                               offerIndex(id + 1, 0));
            __builtin_prefetch(slab_.row(cur, id + 1, 0));
        }

        // Collapse the occupancy bytes into one bit per lane; a fully
        // idle router costs two wide loads and a compare, and the
        // route loop below touches only the set lanes.
        std::uint32_t lane_mask = 0;
        for (std::uint32_t g = 0; g < groups; ++g) {
            std::uint64_t w_in = 0;
            std::uint64_t w_off = 0;
            std::memcpy(&w_in, in_masks + g * 8, 8);
            std::memcpy(&w_off, offer_masks + g * 8, 8);
            std::uint64_t w = w_in | w_off;
            if (g + 1 == groups)
                w &= tail_keep;
            while (w != 0) {
                const auto b = static_cast<unsigned>(
                    __builtin_ctzll(w) >> 3);
                lane_mask |= 1u << (g * 8 + b);
                w &= ~(std::uint64_t{0xff} << (b * 8));
            }
        }
        if (lane_mask == 0)
            continue;

        Ctx ctx{this,
                id,
                dest_frame.data(),
                slab_.row(cur, id, 0),
                in_masks,
                offerMask_.data() + offerIndex(id, 0),
                offerSlab_.data() + offerIndex(id, 0)};
        geo_.routers()[id].routeLanes(lane_mask, ctx, cycle_);

        slab_.clearMaskRow(cur, id);
    }

    ++cycle_;
}

} // namespace fasttrack
