/**
 * @file
 * SMART-style virtual express baseline (Krishna et al. [22], discussed
 * in Sections II-A1 and III-1): a Hoplite torus whose packets may
 * tunnel combinationally through up to HPC_max routers per cycle when
 * the straight-line path ahead is uncontended. Bypass paths are
 * *virtual* - they reuse the ordinary single-hop links - so every
 * bypassed router still inserts its LUT delay into the cycle; on an
 * FPGA that collapses the clock (Fig 4), which is exactly the paper's
 * motivation for physical express links.
 *
 * The model here is idealized in SMART's favor: bypass arbitration is
 * globally greedy with no setup-cycle overhead (real SMART spends a
 * cycle on SSR requests). Even so, converting cycles to wall-clock
 * with the Fig 4 frequencies shows it losing to FastTrack on FPGAs.
 */

#ifndef FT_NOC_SMART_HPP
#define FT_NOC_SMART_HPP

#include <vector>

#include "noc/engine_core.hpp"
#include "noc/network.hpp"

namespace fasttrack {

/**
 * Hoplite network with SMART multi-hop bypass. Implements NocDevice
 * (via EngineCore's shared offer/drain/measurement scaffolding), so
 * all traffic drivers work unchanged.
 */
class SmartNetwork : public EngineCore
{
  public:
    /**
     * @param n torus side (plain Hoplite topology).
     * @param hpc_max maximum routers traversed per cycle (>= 1;
     *        1 degenerates to baseline Hoplite).
     */
    SmartNetwork(std::uint32_t n, std::uint32_t hpc_max);

    void step() override;
    const NocConfig &config() const override { return config_; }
    std::uint64_t linkCount() const override;
    std::uint32_t channelCount() const override { return 1; }

    std::uint32_t hpcMax() const { return hpcMax_; }
    /** Multi-hop traversals realized, by chain length (1..HPC_max). */
    const std::vector<std::uint64_t> &bypassHistogram() const
    {
        return bypassLengths_;
    }

  private:
    NodeId eastOf(NodeId id) const;
    NodeId southOf(NodeId id) const;

    NocConfig config_;
    Topology topo_;
    std::vector<Router> routers_;
    std::vector<Router::Inputs> inputs_;
    std::vector<Router::Inputs> next_;
    std::uint32_t hpcMax_;
    std::vector<std::uint64_t> bypassLengths_;
};

} // namespace fasttrack

#endif // FT_NOC_SMART_HPP
