/**
 * @file
 * SMART-style virtual express baseline (Krishna et al. [22], discussed
 * in Sections II-A1 and III-1): a Hoplite torus whose packets may
 * tunnel combinationally through up to HPC_max routers per cycle when
 * the straight-line path ahead is uncontended. Bypass paths are
 * *virtual* - they reuse the ordinary single-hop links - so every
 * bypassed router still inserts its LUT delay into the cycle; on an
 * FPGA that collapses the clock (Fig 4), which is exactly the paper's
 * motivation for physical express links.
 *
 * The model here is idealized in SMART's favor: bypass arbitration is
 * globally greedy with no setup-cycle overhead (real SMART spends a
 * cycle on SSR requests). Even so, converting cycles to wall-clock
 * with the Fig 4 frequencies shows it losing to FastTrack on FPGAs.
 */

#ifndef FT_NOC_SMART_HPP
#define FT_NOC_SMART_HPP

#include <vector>

#include "noc/network.hpp"

namespace fasttrack {

/**
 * Hoplite network with SMART multi-hop bypass. Implements NocDevice,
 * so all traffic drivers work unchanged.
 */
class SmartNetwork : public NocDevice
{
  public:
    /**
     * @param n torus side (plain Hoplite topology).
     * @param hpc_max maximum routers traversed per cycle (>= 1;
     *        1 degenerates to baseline Hoplite).
     */
    SmartNetwork(std::uint32_t n, std::uint32_t hpc_max);

    void setDeliverCallback(DeliverFn fn) override
    {
        deliver_ = std::move(fn);
    }
    void offer(const Packet &packet) override;
    bool hasPendingOffer(NodeId node) const override;
    void step() override;
    bool drain(Cycle max_cycles) override;
    Cycle now() const override { return cycle_; }
    bool quiescent() const override
    {
        return inFlight_ == 0 && pendingOffers_ == 0;
    }
    NocStats statsSnapshot() const override { return stats_; }
    const NocConfig &config() const override { return config_; }
    std::uint64_t linkCount() const override;
    std::uint32_t channelCount() const override { return 1; }

    std::uint32_t hpcMax() const { return hpcMax_; }
    const NocStats &stats() const { return stats_; }
    /** Multi-hop traversals realized, by chain length (1..HPC_max). */
    const std::vector<std::uint64_t> &bypassHistogram() const
    {
        return bypassLengths_;
    }

  private:
    NodeId eastOf(NodeId id) const;
    NodeId southOf(NodeId id) const;

    NocConfig config_;
    Topology topo_;
    std::vector<Router> routers_;
    std::vector<Router::Inputs> inputs_;
    std::vector<Router::Inputs> next_;
    std::vector<std::optional<Packet>> offers_;
    std::uint32_t hpcMax_;
    std::vector<std::uint64_t> bypassLengths_;
    NocStats stats_;
    DeliverFn deliver_;
    Cycle cycle_ = 0;
    std::uint64_t inFlight_ = 0;
    std::uint64_t pendingOffers_ = 0;
};

} // namespace fasttrack

#endif // FT_NOC_SMART_HPP
