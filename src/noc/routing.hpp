/**
 * @file
 * Routing policy of Hoplite and FastTrack routers (Sections IV-C/D),
 * expressed as pure functions from packet state to an *ordered
 * candidate list* of output ports. The router arbitration engine
 * (router.cpp) walks these lists in input-priority order.
 *
 * Policy summary implemented here:
 *  - Dimension-ordered routing: X (East) before Y (South).
 *  - A packet rides an express lane only when it can reach its
 *    turn/exit column entirely within the express network
 *    (delta >= D and delta % D == 0, at an express-capable router).
 *  - Express -> short transitions only at turns: W_EX -> S_SH and
 *    N_EX -> E_SH.
 *  - Turn traffic beats ring traffic (W before N) for livelock
 *    avoidance; deflected N packets may take either E port.
 *  - Deflections onto an express lane are only *preferred* when the
 *    wraparound keeps the packet aligned (D | N); otherwise they are
 *    last-resort moves whose recovery paths are also encoded here
 *    (early-turn escape for W_EX, sanctioned E_SH escape for N_EX).
 */

#ifndef FT_NOC_ROUTING_HPP
#define FT_NOC_ROUTING_HPP

#include <array>
#include <cstdint>

#include "noc/config.hpp"

namespace fasttrack {

/** Router input ports in descending arbitration priority (when the
 *  paper's turn-priority rule is active). */
enum class InPort : std::uint8_t
{
    wEx = 0, ///< West express (incoming X express link)
    nEx = 1, ///< North express (incoming Y express link)
    wSh = 2, ///< West short
    nSh = 3, ///< North short
    pe = 4,  ///< Client injection
};

/** Router output ports. */
enum class OutPort : std::uint8_t
{
    eEx = 0, ///< East express
    eSh = 1, ///< East short
    sEx = 2, ///< South express
    sSh = 3, ///< South short (shared with the client exit)
    none = 4,
};

inline constexpr std::size_t kNumInPorts = 5;
inline constexpr std::size_t kNumOutPorts = 4;

const char *toString(InPort p);
const char *toString(OutPort p);

inline bool
isExpress(OutPort p)
{
    return p == OutPort::eEx || p == OutPort::sEx;
}

inline bool
isExpress(InPort p)
{
    return p == InPort::wEx || p == InPort::nEx;
}

/** One routing option: an output port, possibly meaning "exit to the
 *  client here" when the packet is at its destination. */
struct Candidate
{
    OutPort out = OutPort::none;
    bool exit = false;
};

/** Small fixed-capacity ordered candidate list. */
class CandidateList
{
  public:
    void push(OutPort out, bool exit = false);
    bool contains(OutPort out) const;
    std::size_t size() const { return size_; }
    const Candidate &operator[](std::size_t i) const { return v_[i]; }

  private:
    std::array<Candidate, 8> v_{};
    std::size_t size_ = 0;
};

/** Static facts about one router needed by the policy. */
struct RouterSite
{
    std::uint32_t n = 0;
    std::uint32_t d = 0;
    NocVariant variant = NocVariant::hoplite;
    bool hasEx = false;       ///< X-dimension express ports exist here
    bool hasEy = false;       ///< Y-dimension express ports exist here
    bool wrapAligned = false; ///< D divides N
    bool allowExpressTurn = true;
    bool allowUpgrade = true;
};

/** Whether the hardware mux structure lets @p in drive @p out at this
 *  router (variant- and depopulation-aware). */
bool physicallyReachable(const RouterSite &site, InPort in, OutPort out);

/**
 * Ordered candidates for an in-flight packet on @p in with remaining
 * ring distances @p dx / @p dy. The list always ends with every
 * physically reachable output, so a bufferless router can forward the
 * packet no matter what higher-priority traffic took.
 * @param express_class inject-variant lane class of the packet.
 */
CandidateList routeCandidates(const RouterSite &site, InPort in,
                              std::uint32_t dx, std::uint32_t dy,
                              bool express_class);

/**
 * Ordered *productive* candidates for PE injection (no deflection
 * entries: Hoplite blocks injection rather than deflecting it).
 * @param[out] express_class set when the inject variant admits the
 *             packet to the express class.
 */
CandidateList injectCandidates(const RouterSite &site, std::uint32_t dx,
                               std::uint32_t dy, bool &express_class);

/**
 * True when the packet can enter an express lane in the given
 * dimension: express ports present, and the remaining distance is an
 * exact multiple of D (so the ride ends exactly at the turn/exit).
 */
bool expressEligible(const RouterSite &site, bool x_dim,
                     std::uint32_t delta);

} // namespace fasttrack

#endif // FT_NOC_ROUTING_HPP
