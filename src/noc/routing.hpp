/**
 * @file
 * Routing policy of Hoplite and FastTrack routers (Sections IV-C/D),
 * expressed as pure functions from packet state to an *ordered
 * candidate list* of output ports. The router arbitration engine
 * (router.hpp's routeCore) walks these lists in input-priority order.
 *
 * The candidate builders are defined inline here: they run once per
 * in-flight packet per cycle, squarely on the simulator's hottest
 * path, and inlining them into the templated stepping core removes a
 * cross-TU call and a by-value CandidateList return per traversal.
 *
 * Policy summary implemented here:
 *  - Dimension-ordered routing: X (East) before Y (South).
 *  - A packet rides an express lane only when it can reach its
 *    turn/exit column entirely within the express network
 *    (delta >= D and delta % D == 0, at an express-capable router).
 *  - Express -> short transitions only at turns: W_EX -> S_SH and
 *    N_EX -> E_SH.
 *  - Turn traffic beats ring traffic (W before N) for livelock
 *    avoidance; deflected N packets may take either E port.
 *  - Deflections onto an express lane are only *preferred* when the
 *    wraparound keeps the packet aligned (D | N); otherwise they are
 *    last-resort moves whose recovery paths are also encoded here
 *    (early-turn escape for W_EX, sanctioned E_SH escape for N_EX).
 */

#ifndef FT_NOC_ROUTING_HPP
#define FT_NOC_ROUTING_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "common/annotations.hpp"
#include "common/logging.hpp"
#include "noc/config.hpp"

namespace fasttrack {

/** Router input ports in descending arbitration priority (when the
 *  paper's turn-priority rule is active). */
enum class InPort : std::uint8_t
{
    wEx = 0, ///< West express (incoming X express link)
    nEx = 1, ///< North express (incoming Y express link)
    wSh = 2, ///< West short
    nSh = 3, ///< North short
    pe = 4,  ///< Client injection
};

/** Router output ports. */
enum class OutPort : std::uint8_t
{
    eEx = 0, ///< East express
    eSh = 1, ///< East short
    sEx = 2, ///< South express
    sSh = 3, ///< South short (shared with the client exit)
    none = 4,
};

inline constexpr std::size_t kNumInPorts = 5;
inline constexpr std::size_t kNumOutPorts = 4;

const char *toString(InPort p);
const char *toString(OutPort p);

inline bool
isExpress(OutPort p)
{
    return p == OutPort::eEx || p == OutPort::sEx;
}

inline bool
isExpress(InPort p)
{
    return p == InPort::wEx || p == InPort::nEx;
}

/** One routing option: an output port, possibly meaning "exit to the
 *  client here" when the packet is at its destination. */
struct Candidate
{
    OutPort out = OutPort::none;
    bool exit = false;
};

/** Small fixed-capacity ordered candidate list. */
class CandidateList
{
  public:
    void push(OutPort out, bool exit = false)
    {
        // Duplicate (port, exit) pairs are dropped, but an exit entry
        // does not shadow a later plain-forwarding entry on the same
        // port: when the client exit is unavailable the packet must
        // still be able to continue through that port.
        for (std::size_t i = 0; i < size_; ++i) {
            if (v_[i].out == out && v_[i].exit == exit)
                return;
        }
        FT_ASSERT(size_ < v_.size(), "candidate list overflow");
        v_[size_++] = Candidate{out, exit};
    }

    bool contains(OutPort out) const
    {
        for (std::size_t i = 0; i < size_; ++i) {
            if (v_[i].out == out)
                return true;
        }
        return false;
    }

    std::size_t size() const { return size_; }
    const Candidate &operator[](std::size_t i) const { return v_[i]; }

  private:
    std::array<Candidate, 8> v_{};
    std::size_t size_ = 0;
};

/** Static facts about one router needed by the policy. */
struct RouterSite
{
    std::uint32_t n = 0;
    std::uint32_t d = 0;
    NocVariant variant = NocVariant::hoplite;
    bool hasEx = false;       ///< X-dimension express ports exist here
    bool hasEy = false;       ///< Y-dimension express ports exist here
    bool wrapAligned = false; ///< D divides N
    bool allowExpressTurn = true;
    bool allowUpgrade = true;
};

/** Whether the hardware mux structure lets @p in drive @p out at this
 *  router (variant- and depopulation-aware). */
inline bool
physicallyReachable(const RouterSite &site, InPort in, OutPort out)
{
    // Port existence from depopulation.
    if ((out == OutPort::eEx && !site.hasEx) ||
        (out == OutPort::sEx && !site.hasEy)) {
        return false;
    }
    if ((in == InPort::wEx && !site.hasEx) ||
        (in == InPort::nEx && !site.hasEy)) {
        return false;
    }

    switch (site.variant) {
      case NocVariant::hoplite:
        return !isExpress(in) && !isExpress(out);

      case NocVariant::ftFull:
        switch (in) {
          case InPort::wEx:
            // Express continues E, or leaves at the turn (S_SH shared
            // exit) or stays express through the turn (S_EX).
            return out == OutPort::eEx || out == OutPort::sSh ||
                   out == OutPort::sEx;
          case InPort::nEx:
            // Express continues S (also the express exit tap), or
            // leaves/deflects East on either lane (N_EX -> E_SH is the
            // sanctioned transition; E_EX is the express deflection).
            return out == OutPort::sEx || out == OutPort::eSh ||
                   out == OutPort::eEx;
          case InPort::wSh:
          case InPort::nSh:
          case InPort::pe:
            return true; // full lane-change freedom
        }
        return false;

      case NocVariant::ftInject:
        // No lane crossing: express stays express, short stays short;
        // the PE can inject into either class.
        if (in == InPort::pe)
            return true;
        return isExpress(in) == isExpress(out);
    }
    return false;
}

/**
 * True when the packet can enter an express lane in the given
 * dimension: express ports present, and the remaining distance is an
 * exact multiple of D (so the ride ends exactly at the turn/exit).
 */
inline bool
expressEligible(const RouterSite &site, bool x_dim, std::uint32_t delta)
{
    const bool ports = x_dim ? site.hasEx : site.hasEy;
    return ports && site.d > 0 && delta >= site.d &&
           delta % site.d == 0;
}

namespace routing_detail {

/** Deflecting East onto the express lane keeps the packet aligned with
 *  the express network (it will return as a high-priority W_EX). */
inline bool
deflectExpressOk(const RouterSite &site, std::uint32_t dx)
{
    return site.hasEx && site.wrapAligned && site.d > 0 &&
           dx % site.d == 0;
}

/** Append every physically reachable output as a terminal fallback so
 *  the bufferless router can always forward. Short lanes first: they
 *  never break express alignment. */
inline void
appendPhysicalTail(const RouterSite &site, InPort in, CandidateList &c)
{
    static constexpr OutPort tail_order[] = {
        OutPort::eSh, OutPort::sSh, OutPort::eEx, OutPort::sEx};
    for (OutPort out : tail_order) {
        if (physicallyReachable(site, in, out))
            c.push(out);
    }
}

inline CandidateList
hopliteCandidates(InPort in, std::uint32_t dx, std::uint32_t dy)
{
    CandidateList c;
    if (dx > 0) {
        c.push(OutPort::eSh);
    } else if (dy > 0) {
        c.push(OutPort::sSh);
        c.push(OutPort::eSh); // classic N/W deflection East
    } else {
        c.push(OutPort::sSh, /*exit=*/true); // shared exit on S
        c.push(OutPort::eSh);
    }
    (void)in;
    return c;
}
// Note: the terminal physical tail is appended uniformly by
// routeCandidates so even exit-gated packets can always forward.

inline CandidateList
fullCandidates(const RouterSite &site, InPort in, std::uint32_t dx,
               std::uint32_t dy)
{
    const std::uint32_t d = site.d;
    CandidateList c;
    switch (in) {
      case InPort::wEx:
        if (dx >= d) {
            // Ride on (misaligned packets keep riding until the last
            // possible hop, then escape below).
            c.push(OutPort::eEx);
        } else if (dx > 0) {
            // Misaligned escape: early turn through the W_EX -> S_SH
            // mux; the packet re-enters the X ring from the N port.
            c.push(OutPort::sSh);
        } else if (dy == 0) {
            c.push(OutPort::sSh, /*exit=*/true);
        } else {
            if (site.allowExpressTurn && expressEligible(site, false, dy))
                c.push(OutPort::sEx);
            c.push(OutPort::sSh);
        }
        break;

      case InPort::nEx:
        if (dx > 0) {
            // Fallback-placed packet that still needs X progress:
            // rejoin the X ring (N_EX -> E_SH is the sanctioned turn).
            if (expressEligible(site, true, dx))
                c.push(OutPort::eEx);
            c.push(OutPort::eSh);
        } else if (dy == 0) {
            // Express exit tap shares the S_EX port.
            c.push(OutPort::sEx, /*exit=*/true);
            if (deflectExpressOk(site, dx))
                c.push(OutPort::eEx);
            c.push(OutPort::eSh);
        } else if (dy >= d && dy % d == 0) {
            c.push(OutPort::sEx);
            if (deflectExpressOk(site, dx))
                c.push(OutPort::eEx);
            c.push(OutPort::eSh);
        } else {
            // Misaligned or short remainder: sanctioned escape East on
            // the short lane, realign, and come back.
            c.push(OutPort::eSh);
        }
        break;

      case InPort::wSh:
        if (dx > 0) {
            if (site.allowUpgrade && expressEligible(site, true, dx))
                c.push(OutPort::eEx);
            c.push(OutPort::eSh);
        } else if (dy > 0) {
            if (site.allowUpgrade && expressEligible(site, false, dy))
                c.push(OutPort::sEx);
            c.push(OutPort::sSh);
            // Deflected turning W_SH may use E_EX and return as a
            // high-priority W_EX (paper Section IV-D).
            if (deflectExpressOk(site, dx))
                c.push(OutPort::eEx);
            c.push(OutPort::eSh);
        } else {
            c.push(OutPort::sSh, /*exit=*/true);
            if (deflectExpressOk(site, dx))
                c.push(OutPort::eEx);
            c.push(OutPort::eSh);
        }
        break;

      case InPort::nSh:
        if (dx > 0) {
            if (site.allowUpgrade && expressEligible(site, true, dx))
                c.push(OutPort::eEx);
            c.push(OutPort::eSh);
        } else if (dy > 0) {
            if (site.allowUpgrade && expressEligible(site, false, dy))
                c.push(OutPort::sEx);
            c.push(OutPort::sSh);
            c.push(OutPort::eSh); // classic N deflection East
        } else {
            c.push(OutPort::sSh, /*exit=*/true);
            c.push(OutPort::eSh);
        }
        break;

      case InPort::pe:
        FT_PANIC("PE handled by injectCandidates");
    }
    return c;
}

inline CandidateList
injectVariantCandidates(const RouterSite &site, InPort in,
                        std::uint32_t dx, std::uint32_t dy)
{
    const std::uint32_t d = site.d;
    CandidateList c;
    switch (in) {
      case InPort::wEx:
        if (dx >= d) {
            c.push(OutPort::eEx);
        } else if (dy == 0 && dx == 0) {
            c.push(OutPort::sEx, /*exit=*/true); // express exit tap
        } else if (site.hasEy) {
            c.push(OutPort::sEx); // turn within the express network
        }
        break;
      case InPort::nEx:
        // The East express deflection exists only where the router
        // actually has X express ports (depopulated sites do not).
        if (dy >= d && dy % d == 0) {
            c.push(OutPort::sEx);
            if (site.hasEx)
                c.push(OutPort::eEx);
        } else {
            c.push(OutPort::sEx, /*exit=*/dy == 0);
            if (site.hasEx)
                c.push(OutPort::eEx);
        }
        break;
      case InPort::wSh:
        if (dx > 0) {
            c.push(OutPort::eSh);
        } else if (dy > 0) {
            c.push(OutPort::sSh);
        } else {
            c.push(OutPort::sSh, /*exit=*/true);
            c.push(OutPort::eSh);
        }
        break;
      case InPort::nSh:
        if (dx > 0) {
            c.push(OutPort::eSh);
        } else if (dy > 0) {
            c.push(OutPort::sSh);
            c.push(OutPort::eSh);
        } else {
            c.push(OutPort::sSh, /*exit=*/true);
            c.push(OutPort::eSh);
        }
        break;
      case InPort::pe:
        FT_PANIC("PE handled by injectCandidates");
    }
    return c;
}

} // namespace routing_detail

/**
 * Ordered candidates for an in-flight packet on @p in with remaining
 * ring distances @p dx / @p dy. The list always ends with every
 * physically reachable output, so a bufferless router can forward the
 * packet no matter what higher-priority traffic took.
 * @param express_class inject-variant lane class of the packet.
 */
inline CandidateList
routeCandidates(const RouterSite &site, InPort in, std::uint32_t dx,
                std::uint32_t dy, bool express_class)
{
    FT_ASSERT(in != InPort::pe, "use injectCandidates for PE");
    CandidateList c;
    switch (site.variant) {
      case NocVariant::hoplite:
        c = routing_detail::hopliteCandidates(in, dx, dy);
        break;
      case NocVariant::ftFull:
        c = routing_detail::fullCandidates(site, in, dx, dy);
        break;
      case NocVariant::ftInject:
        (void)express_class;
        c = routing_detail::injectVariantCandidates(site, in, dx, dy);
        break;
    }
    routing_detail::appendPhysicalTail(site, in, c);
    return c;
}

/**
 * Ordered *productive* candidates for PE injection (no deflection
 * entries: Hoplite blocks injection rather than deflecting it).
 * @param[out] express_class set when the inject variant admits the
 *             packet to the express class.
 */
inline CandidateList
injectCandidates(const RouterSite &site, std::uint32_t dx,
                 std::uint32_t dy, bool &express_class)
{
    CandidateList c;
    express_class = false;
    FT_ASSERT(dx > 0 || dy > 0, "self-addressed packets bypass the NoC");

    switch (site.variant) {
      case NocVariant::hoplite:
        c.push(dx > 0 ? OutPort::eSh : OutPort::sSh);
        break;

      case NocVariant::ftFull:
        if (dx > 0) {
            if (expressEligible(site, true, dx))
                c.push(OutPort::eEx);
            c.push(OutPort::eSh);
        } else {
            if (expressEligible(site, false, dy))
                c.push(OutPort::sEx);
            c.push(OutPort::sSh);
        }
        break;

      case NocVariant::ftInject: {
        // Express only when the whole journey, including the exit tap,
        // stays inside the express network: both distances multiples
        // of D, and the source row carries Y express links (the turn
        // and exit rows inherit alignment because R | D).
        const bool ok_x = dx == 0 || (site.hasEx && dx % site.d == 0);
        const bool ok_y = dy % site.d == 0;
        const bool whole_trip = site.hasEy && ok_x && ok_y;
        if (whole_trip) {
            express_class = true;
            c.push(dx > 0 ? OutPort::eEx : OutPort::sEx);
        } else {
            c.push(dx > 0 ? OutPort::eSh : OutPort::sSh);
        }
        break;
      }
    }
    return c;
}

/**
 * Precomputed candidate lists for one router site.
 *
 * Every candidate builder above depends on a ring distance only
 * through four *distance classes* — zero, short-of-D, aligned
 * multiple-of-D, misaligned beyond-D — never through the raw value, so
 * the full routing policy of a site collapses into a (InPort x
 * dx-class x dy-class) table plus a delta -> class lookup vector.
 * Routers on the hot path index the table instead of re-running the
 * builders per packet per cycle. Sites with identical geometry facts
 * can share one table (a torus has at most four distinct sites:
 * express-x and express-y presence).
 */
class CandidateTable
{
  public:
    /** Distance class of @p delta for express spacing @p d. */
    FT_HOT static std::uint8_t classOf(std::uint32_t delta,
                                       std::uint32_t d)
    {
        if (delta == 0)
            return 0;
        if (d == 0 || delta < d)
            return 1;
        return delta % d == 0 ? 2 : 3;
    }

    /** Populate all entries for @p site (delta range [0, site.n)). */
    void build(const RouterSite &site);

    /** Distance class of a remaining ring distance (< n). */
    FT_HOT std::uint8_t cls(std::uint32_t delta) const
    {
        return cls_[delta];
    }

    /** Candidates for an in-flight packet (same as routeCandidates). */
    FT_HOT const CandidateList &route(InPort in, std::uint8_t dx_cls,
                                      std::uint8_t dy_cls) const
    {
        return route_[(static_cast<std::size_t>(in) * 4 + dx_cls) * 4 +
                      dy_cls];
    }

    /** Candidates for PE injection (same as injectCandidates). */
    FT_HOT const CandidateList &inject(std::uint8_t dx_cls,
                                       std::uint8_t dy_cls) const
    {
        return inject_[static_cast<std::size_t>(dx_cls) * 4 + dy_cls];
    }

    /** Inject-variant express-class admission for an injection. */
    FT_HOT bool injectExpress(std::uint8_t dx_cls,
                              std::uint8_t dy_cls) const
    {
        return injectExpress_[static_cast<std::size_t>(dx_cls) * 4 +
                              dy_cls];
    }

  private:
    std::array<CandidateList, kNumInPorts * 4 * 4> route_{};
    std::array<CandidateList, 4 * 4> inject_{};
    std::array<bool, 4 * 4> injectExpress_{};
    std::vector<std::uint8_t> cls_;
};

} // namespace fasttrack

#endif // FT_NOC_ROUTING_HPP
