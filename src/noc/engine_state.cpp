/**
 * @file
 * EngineState wire codecs and the Network capture/restore paths.
 * Lives apart from network.cpp so the stepping hot path and the
 * (cold) checkpoint machinery never share a translation unit.
 */

#include "noc/engine_state.hpp"

#include "common/logging.hpp"
#include "noc/network.hpp"

namespace fasttrack {

namespace {

/** Upper bounds a decoder accepts before allocating: generous for
 *  any real configuration (n <= 1024 meshes), tight enough that a
 *  hostile length field cannot drive a huge allocation. */
constexpr std::uint32_t kMaxNodes = 1u << 20;
constexpr std::uint32_t kMaxSlabDepth = 4096;

unsigned
popcount4(std::uint8_t m)
{
    return static_cast<unsigned>(__builtin_popcount(m & 0x0fu));
}

} // namespace

void
EngineState::trim()
{
    stats.reset();
    linkTraversals.clear();
    nodeCounters.clear();
    trimmed = true;
}

bool
EngineState::consistent() const
{
    if (nodes == 0 || nodes > kMaxNodes || slabDepth < 2 ||
        slabDepth > kMaxSlabDepth)
        return false;
    if (slabMasks.size() !=
        static_cast<std::size_t>(nodes) * slabDepth)
        return false;
    std::uint64_t occupied = 0;
    for (std::uint8_t m : slabMasks) {
        if (m & 0xf0u)
            return false; // only four input ports exist
        occupied += popcount4(m);
    }
    if (occupied != slabPackets.size())
        return false;
    NodeId prev = kInvalidNode;
    for (const auto &[node, packet] : offers) {
        if (node >= nodes || packet.src != node)
            return false;
        if (prev != kInvalidNode && node <= prev)
            return false; // ascending, no duplicate slots
        prev = node;
    }
    if (trimmed)
        return linkTraversals.empty() && nodeCounters.empty();
    return linkTraversals.size() ==
               static_cast<std::size_t>(nodes) * kNumOutPorts &&
           nodeCounters.size() == nodes;
}

// --- packet / histogram / stats codecs --------------------------------

void
encodePacket(net::WireWriter &w, const Packet &p)
{
    w.u64(p.id);
    w.u32(p.src);
    w.u32(p.dst);
    w.u64(p.created);
    w.u64(p.injected);
    w.u64(p.tag);
    w.u16(p.shortHops);
    w.u16(p.expressHops);
    w.u16(p.deflections);
    w.u8(p.expressClass ? 1 : 0);
}

bool
decodePacket(net::WireReader &r, Packet &p)
{
    std::uint8_t express = 0;
    if (!r.u64(p.id) || !r.u32(p.src) || !r.u32(p.dst) ||
        !r.u64(p.created) || !r.u64(p.injected) || !r.u64(p.tag) ||
        !r.u16(p.shortHops) || !r.u16(p.expressHops) ||
        !r.u16(p.deflections) || !r.u8(express))
        return false;
    if (express > 1)
        return false;
    p.expressClass = express != 0;
    return true;
}

void
encodeHistogram(net::WireWriter &w, const Histogram &h)
{
    const auto &bins = h.bins();
    w.u64(bins.size());
    for (const auto &[value, count] : bins) {
        w.u64(value);
        w.u64(count);
    }
}

bool
decodeHistogram(net::WireReader &r, Histogram &h)
{
    std::uint64_t nbins = 0;
    if (!r.u64(nbins))
        return false;
    for (std::uint64_t i = 0; i < nbins; ++i) {
        std::uint64_t value = 0, count = 0;
        if (!r.u64(value) || !r.u64(count) || count == 0)
            return false;
        h.add(value, count);
    }
    return true;
}

void
encodeNocStats(net::WireWriter &w, const NocStats &s)
{
    w.u64(s.injected);
    w.u64(s.delivered);
    w.u64(s.selfDelivered);
    w.u64(s.shortHopTraversals);
    w.u64(s.expressHopTraversals);
    for (std::uint64_t v : s.deflectionsByPort)
        w.u64(v);
    for (std::uint64_t v : s.misroutesByPort)
        w.u64(v);
    w.u64(s.laneDeflections);
    w.u64(s.exitBlocked);
    w.u64(s.injectionBlockedCycles);
    encodeHistogram(w, s.totalLatency);
    encodeHistogram(w, s.networkLatency);
    encodeHistogram(w, s.hopCount);
    encodeHistogram(w, s.deflectionCount);
}

bool
decodeNocStats(net::WireReader &r, NocStats &s)
{
    bool ok = r.u64(s.injected) && r.u64(s.delivered) &&
              r.u64(s.selfDelivered) && r.u64(s.shortHopTraversals) &&
              r.u64(s.expressHopTraversals);
    for (std::uint64_t &v : s.deflectionsByPort)
        ok = ok && r.u64(v);
    for (std::uint64_t &v : s.misroutesByPort)
        ok = ok && r.u64(v);
    return ok && r.u64(s.laneDeflections) && r.u64(s.exitBlocked) &&
           r.u64(s.injectionBlockedCycles) &&
           decodeHistogram(r, s.totalLatency) &&
           decodeHistogram(r, s.networkLatency) &&
           decodeHistogram(r, s.hopCount) &&
           decodeHistogram(r, s.deflectionCount);
}

// --- engine-state codec ------------------------------------------------

void
encodeEngineState(net::WireWriter &w, const EngineState &st)
{
    FT_ASSERT(st.consistent(), "encoding an inconsistent EngineState");
    w.u64(st.cycle);
    w.u32(st.nodes);
    w.u32(st.slabDepth);
    w.u32(static_cast<std::uint32_t>(st.offers.size()));
    for (const auto &[node, packet] : st.offers) {
        w.u32(node);
        encodePacket(w, packet);
    }
    w.bytes(st.slabMasks.data(), st.slabMasks.size());
    w.u32(static_cast<std::uint32_t>(st.slabPackets.size()));
    for (const Packet &p : st.slabPackets)
        encodePacket(w, p);
    w.u8(st.trimmed ? 1 : 0);
    if (st.trimmed)
        return;
    encodeNocStats(w, st.stats);
    for (std::uint64_t v : st.linkTraversals)
        w.u64(v);
    for (const EngineState::NodeCounters &c : st.nodeCounters) {
        w.u64(c.injected);
        w.u64(c.delivered);
        w.u64(c.blockedCycles);
    }
}

bool
decodeEngineState(net::WireReader &r, EngineState &out)
{
    out = EngineState{};
    if (!r.u64(out.cycle) || !r.u32(out.nodes) || !r.u32(out.slabDepth))
        return false;
    if (out.nodes == 0 || out.nodes > kMaxNodes || out.slabDepth < 2 ||
        out.slabDepth > kMaxSlabDepth)
        return false;

    std::uint32_t offer_count = 0;
    if (!r.u32(offer_count) || offer_count > out.nodes)
        return false;
    out.offers.reserve(offer_count);
    for (std::uint32_t i = 0; i < offer_count; ++i) {
        NodeId node = kInvalidNode;
        Packet p;
        if (!r.u32(node) || !decodePacket(r, p))
            return false;
        out.offers.emplace_back(node, p);
    }

    const std::size_t mask_bytes =
        static_cast<std::size_t>(out.nodes) * out.slabDepth;
    out.slabMasks.resize(mask_bytes);
    if (!r.bytes(out.slabMasks.data(), mask_bytes))
        return false;

    std::uint32_t packet_count = 0;
    if (!r.u32(packet_count) ||
        packet_count > mask_bytes * LinkSlab::kPorts)
        return false;
    out.slabPackets.resize(packet_count);
    for (Packet &p : out.slabPackets) {
        if (!decodePacket(r, p))
            return false;
    }

    std::uint8_t trimmed = 0;
    if (!r.u8(trimmed) || trimmed > 1)
        return false;
    out.trimmed = trimmed != 0;
    if (!out.trimmed) {
        if (!decodeNocStats(r, out.stats))
            return false;
        out.linkTraversals.resize(
            static_cast<std::size_t>(out.nodes) * kNumOutPorts);
        for (std::uint64_t &v : out.linkTraversals) {
            if (!r.u64(v))
                return false;
        }
        out.nodeCounters.resize(out.nodes);
        for (EngineState::NodeCounters &c : out.nodeCounters) {
            if (!r.u64(c.injected) || !r.u64(c.delivered) ||
                !r.u64(c.blockedCycles))
                return false;
        }
    }
    return out.consistent();
}

// --- Network capture/restore ------------------------------------------

bool
Network::captureState(EngineState &out) const
{
    const std::uint32_t count = geo_.nodeCount();
    const std::uint32_t depth = slab_.depth();
    out = EngineState{};
    out.cycle = cycle_;
    out.nodes = count;
    out.slabDepth = depth;

    for (NodeId node = 0; node < count; ++node) {
        if (offerMask_[node])
            out.offers.emplace_back(node, offerSlab_[node]);
    }
    FT_ASSERT(out.offers.size() == pendingOffers_,
              "offer slab out of sync with pendingOffers counter");

    out.slabMasks.reserve(static_cast<std::size_t>(count) * depth);
    for (std::uint32_t frame = 0; frame < depth; ++frame) {
        for (std::uint32_t node = 0; node < count; ++node) {
            const std::uint8_t m = slab_.mask(frame, node);
            out.slabMasks.push_back(m);
            if (!m)
                continue;
            const Packet *row = slab_.row(frame, node);
            for (unsigned bit = 0; bit < LinkSlab::kPorts; ++bit) {
                if (m & (1u << bit))
                    out.slabPackets.push_back(row[bit]);
            }
        }
    }
    FT_ASSERT(out.slabPackets.size() == inFlight_,
              "link slab out of sync with inFlight counter");

    out.stats = stats_;
    out.linkTraversals.reserve(
        static_cast<std::size_t>(count) * kNumOutPorts);
    for (const auto &row : linkTraversals_) {
        for (std::uint64_t v : row)
            out.linkTraversals.push_back(v);
    }
    out.nodeCounters.reserve(count);
    for (const Network::NodeCounters &c : nodeCounters_)
        out.nodeCounters.push_back({c.injected, c.delivered,
                                    c.blockedCycles});
    return true;
}

bool
Network::restoreState(const EngineState &st)
{
    const std::uint32_t count = geo_.nodeCount();
    if (st.nodes != count || st.slabDepth != slab_.depth()) {
        FT_WARN("engine-state restore refused: snapshot is for ",
                st.nodes, " node(s) depth ", st.slabDepth,
                ", device has ", count, " node(s) depth ",
                slab_.depth());
        return false;
    }
    if (!st.consistent()) {
        FT_WARN("engine-state restore refused: inconsistent state");
        return false;
    }

    cycle_ = st.cycle;

#if FT_CHECK_ENABLED
    if (checker_)
        checker_->beginRestore(cycle_);
#endif

    offerMask_.assign(count, 0);
    for (const auto &[node, packet] : st.offers) {
        offerSlab_[node] = packet;
        offerMask_[node] = 1;
#if FT_CHECK_ENABLED
        if (checker_)
            checker_->seedPendingOffer(packet);
#endif
    }
    pendingOffers_ = st.offers.size();

    slab_.init(count, st.slabDepth);
    std::size_t next = 0;
    for (std::uint32_t frame = 0; frame < st.slabDepth; ++frame) {
        for (std::uint32_t node = 0; node < count; ++node) {
            const std::uint8_t m =
                st.slabMasks[static_cast<std::size_t>(frame) * count +
                             node];
            for (unsigned bit = 0; bit < LinkSlab::kPorts; ++bit) {
                if (!(m & (1u << bit)))
                    continue;
                const Packet &p = st.slabPackets[next++];
                slab_.place(frame, node, static_cast<InPort>(bit), p);
#if FT_CHECK_ENABLED
                if (checker_)
                    checker_->seedInFlightPacket(p, node);
#endif
            }
        }
    }
    inFlight_ = st.slabPackets.size();

    if (st.trimmed) {
        stats_.reset();
        linkTraversals_.assign(count, {});
        nodeCounters_.assign(count, {});
    } else {
        stats_ = st.stats;
        for (std::uint32_t node = 0; node < count; ++node) {
            for (std::size_t port = 0; port < kNumOutPorts; ++port)
                linkTraversals_[node][port] =
                    st.linkTraversals[static_cast<std::size_t>(node) *
                                          kNumOutPorts +
                                      port];
            const EngineState::NodeCounters &c = st.nodeCounters[node];
            nodeCounters_[node] = {c.injected, c.delivered,
                                   c.blockedCycles};
        }
    }

#if FT_CHECK_ENABLED
    if (checker_)
        checker_->finishRestore(stats_.delivered, stats_.selfDelivered,
                                cycle_);
#endif
    return true;
}

} // namespace fasttrack
