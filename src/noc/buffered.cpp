#include "noc/buffered.hpp"

#include "common/logging.hpp"

namespace fasttrack {

BufferedNetwork::BufferedNetwork(std::uint32_t n,
                                 std::uint32_t fifo_depth)
    : EngineCore(n * n), n_(n), fifoDepth_(fifo_depth)
{
    FT_ASSERT(n >= 2, "mesh side must be >= 2");
    FT_ASSERT(fifo_depth >= 1, "FIFO depth must be >= 1");
    config_ = NocConfig::hoplite(n); // size carrier for NocDevice
    routers_.resize(n * n);
}

BufferedNetwork::Port
BufferedNetwork::routeOutput(Coord here, Coord dst) const
{
    // Dimension-ordered XY on a mesh (no wraparound): deadlock-free.
    if (dst.x > here.x)
        return east;
    if (dst.x < here.x)
        return west;
    if (dst.y > here.y)
        return south;
    if (dst.y < here.y)
        return north;
    return local;
}

NodeId
BufferedNetwork::neighbor(NodeId id, Port out) const
{
    const Coord c = toCoord(id, n_);
    switch (out) {
      case north:
        return c.y == 0 ? kInvalidNode : id - n_;
      case south:
        return c.y + 1u == n_ ? kInvalidNode : id + n_;
      case east:
        return c.x + 1u == n_ ? kInvalidNode : id + 1;
      case west:
        return c.x == 0 ? kInvalidNode : id - 1;
      default:
        return kInvalidNode;
    }
}

void
BufferedNetwork::step()
{
    struct Move
    {
        NodeId from;
        Port in;
        NodeId to;       ///< kInvalidNode = delivery
        Port to_in = local;
    };
    std::vector<Move> moves;

    // Opposite input port a packet lands on after leaving through an
    // output port.
    static constexpr Port kOpposite[] = {south, north, west, east,
                                         local};

    // Phase 1: per-output round-robin arbitration using start-of-cycle
    // FIFO occupancies as credits.
    for (NodeId id = 0; id < routers_.size(); ++id) {
        RouterState &router = routers_[id];
        const Coord here = toCoord(id, n_);
        for (std::uint8_t out = 0; out < portCount; ++out) {
            // Credit check for link outputs.
            NodeId to = kInvalidNode;
            Port to_in = local;
            if (out != local) {
                to = neighbor(id, static_cast<Port>(out));
                if (to == kInvalidNode)
                    continue; // mesh edge: no such link
                to_in = kOpposite[out];
                if (routers_[to].fifo[to_in].size() >= fifoDepth_)
                    continue; // no credit
            }
            // Round-robin scan of requesting inputs.
            for (std::uint8_t scan = 0; scan < portCount; ++scan) {
                const auto in = static_cast<std::uint8_t>(
                    (router.rr[out] + scan) % portCount);
                const auto &fifo = router.fifo[in];
                if (fifo.empty())
                    continue;
                const Coord dst = toCoord(fifo.front().dst, n_);
                if (routeOutput(here, dst) !=
                    static_cast<Port>(out)) {
                    continue;
                }
                moves.push_back({id, static_cast<Port>(in),
                                 out == local ? kInvalidNode : to,
                                 to_in});
                router.rr[out] =
                    static_cast<std::uint8_t>((in + 1) % portCount);
                break;
            }
        }
    }

    // Phase 2: apply grants (pops are unique per input FIFO since a
    // head requests exactly one output).
    for (const Move &m : moves) {
        auto &fifo = routers_[m.from].fifo[m.in];
        Packet p = std::move(fifo.front());
        fifo.pop_front();
        if (m.to == kInvalidNode) {
            recordDeliveryStats(p, cycle_);
            deliverToClient(p, cycle_);
        } else {
            ++p.shortHops;
            ++stats_.shortHopTraversals;
            routers_[m.to].fifo[m.to_in].push_back(std::move(p));
        }
    }

    // Phase 3: client injection into the local FIFOs.
    for (NodeId id = 0; id < routers_.size(); ++id) {
        if (!offerMask_[id])
            continue;
        auto &fifo = routers_[id].fifo[local];
        if (fifo.size() >= fifoDepth_) {
            ++stats_.injectionBlockedCycles;
            continue;
        }
        Packet p = offerSlab_[id];
        p.injected = cycle_;
        fifo.push_back(std::move(p));
        offerMask_[id] = 0;
        --pendingOffers_;
        ++inFlight_;
        ++stats_.injected;
    }

    ++cycle_;
}

std::uint64_t
BufferedNetwork::linkCount() const
{
    // Bidirectional mesh: 2 links per adjacent pair, both dimensions.
    return 2ull * 2 * n_ * (n_ - 1);
}

} // namespace fasttrack
