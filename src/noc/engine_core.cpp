#include "noc/engine_core.hpp"

#include "common/logging.hpp"

namespace fasttrack {

EngineCore::EngineCore(std::uint32_t nodes) : nodes_(nodes)
{
    offerSlab_.resize(nodes);
    offerMask_.assign(nodes, 0);
}

void
EngineCore::offer(const Packet &packet)
{
    FT_ASSERT(packet.src < nodes_, "bad source node");
    FT_ASSERT(packet.dst < nodes_, "bad destination node");
    if (packet.src == packet.dst) {
        // Local traffic bypasses the NoC entirely.
        ++stats_.selfDelivered;
        Packet p = packet;
        p.injected = cycle_;
#if FT_CHECK_ENABLED
        if (checker_)
            checker_->onSelfDelivery(p, cycle_);
#endif
        deliverToClient(p, cycle_);
        return;
    }
    FT_ASSERT(!offerMask_[packet.src], "node ", packet.src,
              " already has a pending offer");
    offerSlab_[packet.src] = packet;
    offerMask_[packet.src] = 1;
    ++pendingOffers_;
#if FT_CHECK_ENABLED
    if (checker_)
        checker_->onOffer(packet, cycle_);
#endif
}

bool
EngineCore::hasPendingOffer(NodeId node) const
{
    FT_ASSERT(node < nodes_, "bad node");
    return offerMask_[node] != 0;
}

Packet
EngineCore::withdrawOffer(NodeId node)
{
    FT_ASSERT(node < nodes_, "bad node");
    FT_ASSERT(offerMask_[node], "no pending offer at node ", node);
    offerMask_[node] = 0;
    --pendingOffers_;
#if FT_CHECK_ENABLED
    if (checker_)
        checker_->onWithdraw(node, cycle_);
#endif
    return offerSlab_[node];
}

bool
EngineCore::drain(Cycle max_cycles)
{
    const Cycle limit = cycle_ + max_cycles;
    while (!quiescent() && cycle_ < limit)
        step();
    if (quiescent())
        onDrainedQuiescent();
    return quiescent();
}

void
EngineCore::recordDeliveryStats(const Packet &p, Cycle now)
{
    --inFlight_;
    ++stats_.delivered;
    stats_.totalLatency.add(now - p.created);
    stats_.networkLatency.add(now - p.injected);
    stats_.hopCount.add(p.totalHops());
    stats_.deflectionCount.add(p.deflections);
}

} // namespace fasttrack
