#include "noc/router.hpp"

#include "check/invariants.hpp"
#include "common/logging.hpp"

namespace fasttrack {

Router::Router(const Topology &topology, Coord pos)
    : pos_(pos), n_(topology.n())
{
    const NocConfig &cfg = topology.config();
    site_.n = cfg.n;
    site_.d = cfg.isFastTrack() ? cfg.d : 0;
    site_.variant = cfg.variant;
    site_.hasEx = topology.hasExpressX(pos.x);
    site_.hasEy = topology.hasExpressY(pos.y);
    site_.wrapAligned = topology.wrapAligned();
    site_.allowExpressTurn = cfg.allowExpressTurn;
    site_.allowUpgrade = cfg.allowUpgrade;
    turnPriority_ = cfg.turnPriority;
}

Router::Result
Router::route(Inputs &inputs, const std::optional<Packet> &pe_offer,
              bool exit_ok, Cycle now, NocStats &stats) const
{
    Result result;
    std::array<bool, kNumOutPorts> taken{};
    bool exit_granted = false;

#if FT_CHECK_ENABLED
    std::size_t check_inputs = 0;
    for (const auto &slot : inputs) {
        if (slot)
            ++check_inputs;
    }
#endif

    auto distances = [&](const Packet &p, std::uint32_t &dx,
                         std::uint32_t &dy) {
        const Coord dst = toCoord(p.dst, n_);
        dx = ringDistance(pos_.x, dst.x, n_);
        dy = ringDistance(pos_.y, dst.y, n_);
    };

    // DOR direction the packet ought to leave in; anything else is a
    // misroute (Fig 18's deflection semantics).
    enum class Dir { east, south, exit };
    auto desiredDir = [](std::uint32_t dx, std::uint32_t dy) {
        if (dx > 0)
            return Dir::east;
        return dy > 0 ? Dir::south : Dir::exit;
    };
    auto outDir = [](OutPort out) {
        return (out == OutPort::eEx || out == OutPort::eSh)
                   ? Dir::east
                   : Dir::south;
    };

    auto assign = [&](InPort in, Packet &p, std::uint32_t dx,
                      std::uint32_t dy, const CandidateList &cands) {
        const Dir want = desiredDir(dx, dy);
        for (std::size_t i = 0; i < cands.size(); ++i) {
            const Candidate &c = cands[i];
            if (c.exit) {
                if (exit_granted || !exit_ok) {
                    // Client exit unavailable: fall through to the
                    // deflection candidates.
                    ++stats.exitBlocked;
                    continue;
                }
                const auto idx = static_cast<std::size_t>(c.out);
                if (taken[idx])
                    continue;
                taken[idx] = true;
                exit_granted = true;
                if (i != 0) {
                    ++p.deflections;
                    ++stats.deflectionsByPort[static_cast<int>(in)];
                }
                result.delivered = p;
                result.deliveredFrom = in;
                return true;
            }
            const auto idx = static_cast<std::size_t>(c.out);
            if (taken[idx])
                continue;
            taken[idx] = true;
            if (i != 0) {
                ++p.deflections;
                ++stats.deflectionsByPort[static_cast<int>(in)];
                if (isExpress(cands[0].out) && !isExpress(c.out))
                    ++stats.laneDeflections;
            }
            if (outDir(c.out) != want)
                ++stats.misroutesByPort[static_cast<int>(in)];
            if (isExpress(c.out)) {
                ++p.expressHops;
                ++stats.expressHopTraversals;
            } else {
                ++p.shortHops;
                ++stats.shortHopTraversals;
            }
            result.out[idx] = p;
            return true;
        }
        return false;
    };

    // In-flight packets first, in livelock-avoidance priority order.
    // With the paper's rule, turning W traffic beats ring (N) traffic;
    // the naive ablation order lets ring traffic win instead.
    static constexpr InPort kTurnFirst[] = {InPort::wEx, InPort::nEx,
                                            InPort::wSh, InPort::nSh};
    static constexpr InPort kRingFirst[] = {InPort::nEx, InPort::wEx,
                                            InPort::nSh, InPort::wSh};
    const auto &order = turnPriority_ ? kTurnFirst : kRingFirst;

    for (InPort in : order) {
        auto &slot = inputs[static_cast<std::size_t>(in)];
        if (!slot)
            continue;
        Packet &p = *slot;
        std::uint32_t dx = 0, dy = 0;
        distances(p, dx, dy);
        const CandidateList cands =
            routeCandidates(site_, in, dx, dy, p.expressClass);
        const bool ok = assign(in, p, dx, dy, cands);
        FT_ASSERT(ok, "router at ", coordToString(pos_),
                  " could not forward packet on ", toString(in));
        slot.reset();
    }

    // PE injection last, and only onto a productive output.
    if (pe_offer) {
        Packet p = *pe_offer;
        p.injected = now;
        std::uint32_t dx = 0, dy = 0;
        distances(p, dx, dy);
        bool express_class = false;
        const CandidateList cands =
            injectCandidates(site_, dx, dy, express_class);
        p.expressClass = express_class;
        for (std::size_t i = 0; i < cands.size(); ++i) {
            const auto idx = static_cast<std::size_t>(cands[i].out);
            if (taken[idx])
                continue;
            taken[idx] = true;
            if (isExpress(cands[i].out)) {
                ++p.expressHops;
                ++stats.expressHopTraversals;
            } else {
                ++p.shortHops;
                ++stats.shortHopTraversals;
            }
            result.out[idx] = p;
            result.peAccepted = true;
            ++stats.injected;
            break;
        }
        if (!result.peAccepted)
            ++stats.injectionBlockedCycles;
    }

#if FT_CHECK_ENABLED
    std::size_t check_outputs = 0;
    for (const auto &o : result.out) {
        if (o)
            ++check_outputs;
    }
    check::verifyRouterResult(
        pos_, check_inputs, pe_offer.has_value(), result.peAccepted,
        check_outputs, result.delivered.has_value(),
        result.out[static_cast<std::size_t>(OutPort::eEx)].has_value() &&
            !site_.hasEx,
        result.out[static_cast<std::size_t>(OutPort::sEx)].has_value() &&
            !site_.hasEy);
#endif

    return result;
}

} // namespace fasttrack
