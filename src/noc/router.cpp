#include "noc/router.hpp"

#include "check/invariants.hpp"
#include "common/logging.hpp"

namespace fasttrack {

RouterSite
Router::siteFor(const Topology &topology, Coord pos)
{
    const NocConfig &cfg = topology.config();
    RouterSite site;
    site.n = cfg.n;
    site.d = cfg.isFastTrack() ? cfg.d : 0;
    site.variant = cfg.variant;
    site.hasEx = topology.hasExpressX(pos.x);
    site.hasEy = topology.hasExpressY(pos.y);
    site.wrapAligned = topology.wrapAligned();
    site.allowExpressTurn = cfg.allowExpressTurn;
    site.allowUpgrade = cfg.allowUpgrade;
    return site;
}

Router::Router(const Topology &topology, Coord pos,
               std::shared_ptr<const CandidateTable> table)
    : pos_(pos), n_(topology.n()), site_(siteFor(topology, pos)),
      turnPriority_(topology.config().turnPriority),
      table_(std::move(table)), divN_(topology.n())
{
    if (!table_) {
        auto own = std::make_shared<CandidateTable>();
        own->build(site_);
        table_ = std::move(own);
    }
}

Router::Result
Router::route(Inputs &inputs, const std::optional<Packet> &pe_offer,
              bool exit_ok, Cycle now, NocStats &stats) const
{
    // Adapter: marshal the optional-based interface into the dense
    // registers routeCore expects, and collect its sink events back
    // into a Result.
    std::array<Packet, 4> regs{};
    std::uint8_t mask = 0;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        if (inputs[i]) {
            regs[i] = *inputs[i];
            mask = static_cast<std::uint8_t>(mask | (1u << i));
        }
    }

    Result result;
    struct ResultSink
    {
        Result &r;
        void forward(OutPort out, const Packet &p)
        {
            r.out[static_cast<std::size_t>(out)] = p;
        }
        void deliver(InPort in, const Packet &p)
        {
            r.delivered = p;
            r.deliveredFrom = in;
        }
    } sink{result};

    result.peAccepted = routeCore(
        regs.data(), mask, pe_offer ? &*pe_offer : nullptr, now, stats,
        [exit_ok](const Packet &) { return exit_ok; }, sink);

    // Inputs were consumed by the router this cycle.
    for (auto &slot : inputs)
        slot.reset();

#if FT_CHECK_ENABLED
    std::size_t check_inputs = 0;
    for (std::uint8_t m = mask; m; m &= static_cast<std::uint8_t>(m - 1))
        ++check_inputs;
    std::size_t check_outputs = 0;
    for (const auto &o : result.out) {
        if (o)
            ++check_outputs;
    }
    check::verifyRouterResult(
        pos_, check_inputs, pe_offer.has_value(), result.peAccepted,
        check_outputs, result.delivered.has_value(),
        result.out[static_cast<std::size_t>(OutPort::eEx)].has_value() &&
            !site_.hasEx,
        result.out[static_cast<std::size_t>(OutPort::sEx)].has_value() &&
            !site_.hasEy);
#endif

    return result;
}

} // namespace fasttrack
