/**
 * @file
 * FT(N^2, D, R) topology geometry: which routers carry express ports,
 * where each link lands, and the wiring bill (Section IV-A, Fig 7).
 */

#ifndef FT_NOC_TOPOLOGY_HPP
#define FT_NOC_TOPOLOGY_HPP

#include "common/types.hpp"
#include "fpga/area_model.hpp"
#include "noc/config.hpp"

namespace fasttrack {

/**
 * Geometry of one configured NoC. Express links in a row start at
 * columns x == 0 (mod R) and span D routers eastward (braided, so D/R
 * express tracks cross any vertical cut); columns are symmetric.
 */
class Topology
{
  public:
    explicit Topology(const NocConfig &config);

    const NocConfig &config() const { return config_; }
    std::uint32_t n() const { return config_.n; }
    std::uint32_t d() const { return config_.d; }
    std::uint32_t r() const { return config_.r; }
    std::uint32_t nodeCount() const { return config_.pes(); }

    /** Router at column @p x drives/receives X-dimension express links. */
    bool hasExpressX(std::uint32_t x) const;
    /** Router at row @p y drives/receives Y-dimension express links. */
    bool hasExpressY(std::uint32_t y) const;

    /** Full express-ring wraparound stays aligned (D divides N). */
    bool wrapAligned() const;

    /** Router family at a coordinate (Black / Grey / White of Fig 7). */
    RouterArch kindAt(Coord c) const;

    // --- link landing sites ---
    Coord eastShort(Coord c) const;
    Coord eastExpress(Coord c) const;
    Coord southShort(Coord c) const;
    Coord southExpress(Coord c) const;

    /** Ring tracks crossing a cut: 1 short + D/R express (paper's
     *  "D/R + 1" wire factor). */
    std::uint32_t tracksPerRing() const;

    /** Express links per ring (N/R start positions). */
    std::uint32_t expressLinksPerRing() const;

    /**
     * Minimal hop count from @p src to @p dst under ideal contention-
     * free FastTrack routing (short prefix to align, express ride,
     * same in Y). Used by tests as a zero-load golden model.
     */
    std::uint32_t minimalHops(Coord src, Coord dst) const;

  private:
    /** Ideal hop count along one ring of distance @p delta, given the
     *  alignment start offset @p pos (position on the ring). */
    std::uint32_t ringHops(std::uint32_t pos, std::uint32_t delta,
                           bool express_dim) const;

    NocConfig config_;
};

} // namespace fasttrack

#endif // FT_NOC_TOPOLOGY_HPP
