#include "noc/smart.hpp"

#include "common/logging.hpp"

namespace fasttrack {

SmartNetwork::SmartNetwork(std::uint32_t n, std::uint32_t hpc_max)
    : EngineCore(n * n),
      config_(NocConfig::hoplite(n)),
      topo_(config_),
      hpcMax_(hpc_max)
{
    FT_ASSERT(hpc_max >= 1, "HPC_max must be >= 1");
    const std::uint32_t count = topo_.nodeCount();
    routers_.reserve(count);
    inputs_.resize(count);
    next_.resize(count);
    bypassLengths_.assign(hpcMax_, 0);
    for (std::uint32_t id = 0; id < count; ++id)
        routers_.emplace_back(topo_, toCoord(id, n));
}

NodeId
SmartNetwork::eastOf(NodeId id) const
{
    return toNodeId(topo_.eastShort(toCoord(id, topo_.n())), topo_.n());
}

NodeId
SmartNetwork::southOf(NodeId id) const
{
    return toNodeId(topo_.southShort(toCoord(id, topo_.n())),
                    topo_.n());
}

void
SmartNetwork::step()
{
    const std::uint32_t count = topo_.nodeCount();

    struct PendingTransfer
    {
        Packet packet;
        NodeId from;
        bool south; ///< false = East
    };
    std::vector<PendingTransfer> transfers;
    // Link usage this cycle: [router][0]=E link, [1]=S link.
    std::vector<std::array<bool, 2>> link_used(count, {false, false});

    // Phase 1: ordinary Hoplite arbitration at every router.
    for (std::uint32_t id = 0; id < count; ++id) {
        std::optional<Packet> offer;
        if (offerMask_[id])
            offer = offerSlab_[id];
        Router::Result res =
            routers_[id].route(inputs_[id], offer, true, cycle_,
                               stats_);
        if (res.peAccepted) {
            offerMask_[id] = 0;
            --pendingOffers_;
            ++inFlight_;
        }
        if (res.delivered) {
            const Packet &p = *res.delivered;
            recordDeliveryStats(p, cycle_);
            deliverToClient(p, cycle_);
        }
        auto &e_slot = res.out[static_cast<std::size_t>(OutPort::eSh)];
        if (e_slot) {
            link_used[id][0] = true;
            transfers.push_back({std::move(*e_slot), id, false});
        }
        auto &s_slot = res.out[static_cast<std::size_t>(OutPort::sSh)];
        if (s_slot) {
            link_used[id][1] = true;
            transfers.push_back({std::move(*s_slot), id, true});
        }
    }

    // Phase 2: SMART bypass extension - each launched packet tunnels
    // through further routers while it wants to continue straight and
    // the next link segment is idle. Greedy in router-scan order,
    // matching a deterministic SSR priority.
    const std::uint32_t n = topo_.n();
    for (PendingTransfer &t : transfers) {
        NodeId land = t.south ? southOf(t.from) : eastOf(t.from);
        std::uint32_t chain = 1;
        while (chain < hpcMax_) {
            const Coord here = toCoord(land, n);
            const Coord dst = toCoord(t.packet.dst, n);
            const std::uint32_t dx = ringDistance(here.x, dst.x, n);
            const std::uint32_t dy = ringDistance(here.y, dst.y, n);
            const bool continues =
                t.south ? (dx == 0 && dy > 0) : (dx > 0);
            if (!continues)
                break;
            auto &used = link_used[land][t.south ? 1 : 0];
            if (used)
                break;
            used = true;
            ++t.packet.shortHops;
            ++stats_.shortHopTraversals;
            land = t.south ? southOf(land) : eastOf(land);
            ++chain;
        }
        ++bypassLengths_[chain - 1];
        auto &dst_slot =
            next_[land][static_cast<std::size_t>(
                t.south ? InPort::nSh : InPort::wSh)];
        FT_ASSERT(!dst_slot, "SMART landing collision");
        dst_slot = std::move(t.packet);
    }

    inputs_.swap(next_);
    for (auto &slots : next_) {
        for (auto &slot : slots)
            slot.reset();
    }
    ++cycle_;
}

std::uint64_t
SmartNetwork::linkCount() const
{
    return 2ull * topo_.n() * topo_.n();
}

} // namespace fasttrack
