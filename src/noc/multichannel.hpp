/**
 * @file
 * Multi-channel Hoplite (Hoplite-2x / Hoplite-3x): k independent
 * replicated networks behind a single client interface, the paper's
 * iso-wiring baseline (Section VI, Fig 13/14). Fair-comparison rules
 * from the paper: each client injects at most one packet per cycle
 * (into one channel) and accepts at most one delivery per cycle.
 */

#ifndef FT_NOC_MULTICHANNEL_HPP
#define FT_NOC_MULTICHANNEL_HPP

#include <memory>
#include <vector>

#include "noc/network.hpp"

namespace fasttrack {

/**
 * Replicated-channel NoC with single-injection / single-delivery
 * client semantics. Presents the same offer/step interface as Network.
 */
class MultiChannelNoc : public NocDevice
{
  public:
    MultiChannelNoc(const NocConfig &config, std::uint32_t channels);

    using DeliverFn = Network::DeliverFn;
    void setDeliverCallback(DeliverFn fn) override;

    /** Offer a packet at its source (one pending per node). */
    void offer(const Packet &packet) override;
    bool hasPendingOffer(NodeId node) const override;

    /** Advance all channels one cycle with shared exit arbitration. */
    void step() override;
    bool drain(Cycle max_cycles) override;

    Cycle now() const override { return cycle_; }
    bool quiescent() const override;
    std::uint32_t channelCount() const override
    {
        return static_cast<std::uint32_t>(channels_.size());
    }

    /** Summed stats across channels. */
    NocStats aggregateStats() const;
    NocStats statsSnapshot() const override { return aggregateStats(); }
    const Network &channel(std::uint32_t i) const { return *channels_[i]; }
    const NocConfig &config() const override { return config_; }
    std::uint64_t linkCount() const override;

  private:
    NocConfig config_;
    std::vector<std::unique_ptr<Network>> channels_;
    /** Which channel currently holds each node's pending offer, or -1. */
    std::vector<int> offerChannel_;
    /** Next channel to try per node (round-robin retargeting). */
    std::vector<std::uint32_t> nextChannel_;
    /** Per-cycle exit-used marks (one delivery per node per cycle). */
    std::vector<bool> exitUsed_;
    DeliverFn deliver_;
    Cycle cycle_ = 0;
    std::uint32_t stepOrigin_ = 0;
};

} // namespace fasttrack

#endif // FT_NOC_MULTICHANNEL_HPP
