/**
 * @file
 * Multi-channel Hoplite (Hoplite-2x / Hoplite-3x): k independent
 * replicated networks behind a single client interface, the paper's
 * iso-wiring baseline (Section VI, Fig 13/14). Fair-comparison rules
 * from the paper: each client injects at most one packet per cycle
 * (into one channel) and accepts at most one delivery per cycle.
 */

#ifndef FT_NOC_MULTICHANNEL_HPP
#define FT_NOC_MULTICHANNEL_HPP

#include <memory>
#include <vector>

#include "noc/engine_core.hpp"
#include "noc/network.hpp"

namespace fasttrack {

/**
 * Replicated-channel NoC with single-injection / single-delivery
 * client semantics. Presents the same offer/step interface as Network.
 * Packets live inside the channels, so the EngineCore offer slab is
 * bypassed: offer bookkeeping delegates to the owning channel and the
 * aggregate queries sum over channels.
 */
class MultiChannelNoc : public EngineCore
{
  public:
    MultiChannelNoc(const NocConfig &config, std::uint32_t channels);

    using DeliverFn = Network::DeliverFn;

    /** Offer a packet at its source (one pending per node). */
    void offer(const Packet &packet) override;
    bool hasPendingOffer(NodeId node) const override;
    /** Pending offers live inside the channels, not the EngineCore
     *  slab: there is no dense view to expose. */
    const std::uint8_t *pendingOfferMask() const override
    {
        return nullptr;
    }

    /** Advance all channels one cycle with shared exit arbitration. */
    void step() override;

    bool quiescent() const override;
    std::uint32_t channelCount() const override
    {
        return static_cast<std::uint32_t>(channels_.size());
    }

    /** Summed stats across channels. */
    NocStats aggregateStats() const;
    NocStats statsSnapshot() const override { return aggregateStats(); }
    const Network &channel(std::uint32_t i) const { return *channels_[i]; }
    const NocConfig &config() const override { return config_; }
    std::uint64_t linkCount() const override;

  private:
    void onDrainedQuiescent() override;

    NocConfig config_;
    std::vector<std::unique_ptr<Network>> channels_;
    /** Which channel currently holds each node's pending offer, or -1. */
    std::vector<int> offerChannel_;
    /** Next channel to try per node (round-robin retargeting). */
    std::vector<std::uint32_t> nextChannel_;
    /** Per-cycle exit-used marks (one delivery per node per cycle). */
    std::vector<bool> exitUsed_;
    std::uint32_t stepOrigin_ = 0;
};

} // namespace fasttrack

#endif // FT_NOC_MULTICHANNEL_HPP
