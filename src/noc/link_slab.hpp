/**
 * @file
 * Dense link-register storage for the cycle engine.
 *
 * The link registers of all routers live in one contiguous packet
 * array plus per-router occupancy bitmasks, organized as a ring of
 * "frames" indexed by arrival cycle modulo the ring depth. Frame
 * `cycle % depth` holds the packets arriving at the routers' inputs
 * at `cycle`; a router forwarding on a link of latency L writes the
 * packet directly into frame `(cycle + L) % depth` at the landing
 * (router, port) slot. This subsumes the former per-cycle Arrival
 * vectors (the "pipe") and the std::optional<Packet> input registers:
 * stepping streams over flat memory, moves each packet exactly once,
 * and never constructs or destructs optionals.
 *
 * Depth must exceed the largest link latency so an in-flight write can
 * never land in the frame currently being consumed.
 */

#ifndef FT_NOC_LINK_SLAB_HPP
#define FT_NOC_LINK_SLAB_HPP

#include <cstdint>
#include <vector>

#include "common/annotations.hpp"
#include "common/logging.hpp"
#include "common/types.hpp"
#include "noc/packet.hpp"
#include "noc/routing.hpp"

namespace fasttrack {

/** Contiguous (frame, router, port)-indexed packet registers. */
class LinkSlab
{
  public:
    /** Input ports per router (wEx, nEx, wSh, nSh). */
    static constexpr std::uint32_t kPorts = 4;

    void init(std::uint32_t routers, std::uint32_t depth)
    {
        FT_ASSERT(depth >= 2, "slab needs at least a double buffer");
        routers_ = routers;
        depth_ = depth;
        slots_.resize(static_cast<std::size_t>(routers) * kPorts *
                      depth);
        masks_.assign(static_cast<std::size_t>(routers) * depth, 0);
    }

    std::uint32_t depth() const { return depth_; }

    /** Frame index holding arrivals for @p cycle. */
    FT_HOT std::uint32_t frameOf(Cycle cycle) const
    {
        return static_cast<std::uint32_t>(cycle % depth_);
    }

    /** The four input-port slots of @p router in @p frame. */
    FT_HOT Packet *row(std::uint32_t frame, std::uint32_t router)
    {
        return slots_.data() +
               (static_cast<std::size_t>(frame) * routers_ + router) *
                   kPorts;
    }
    FT_HOT const Packet *row(std::uint32_t frame,
                             std::uint32_t router) const
    {
        return slots_.data() +
               (static_cast<std::size_t>(frame) * routers_ + router) *
                   kPorts;
    }

    /** Occupancy bits of @p router in @p frame (bit i = InPort i). */
    FT_HOT std::uint8_t mask(std::uint32_t frame,
                             std::uint32_t router) const
    {
        return masks_[static_cast<std::size_t>(frame) * routers_ +
                      router];
    }
    FT_HOT void clearMask(std::uint32_t frame, std::uint32_t router)
    {
        masks_[static_cast<std::size_t>(frame) * routers_ + router] = 0;
    }

    /**
     * Land @p p on (@p frame, @p router, @p port), asserting the
     * single-driver rule (the slot must be empty). Returns the placed
     * slot so callers can emit trace/checker events from it.
     */
    FT_HOT Packet *place(std::uint32_t frame, std::uint32_t router,
                         InPort port, const Packet &p)
    {
        std::uint8_t &m =
            masks_[static_cast<std::size_t>(frame) * routers_ + router];
        const auto bit = static_cast<std::uint8_t>(
            1u << static_cast<unsigned>(port));
        FT_ASSERT(!(m & bit), "link register collision");
        m = static_cast<std::uint8_t>(m | bit);
        Packet *slot = row(frame, router) + static_cast<unsigned>(port);
        *slot = p;
        return slot;
    }

    /** Total occupied slots across all frames (debug aid). */
    std::uint64_t occupied() const
    {
        std::uint64_t total = 0;
        for (std::uint8_t m : masks_)
            total += static_cast<unsigned>(__builtin_popcount(m));
        return total;
    }

  private:
    std::vector<Packet> slots_;
    std::vector<std::uint8_t> masks_;
    std::uint32_t routers_ = 0;
    std::uint32_t depth_ = 0;
};

} // namespace fasttrack

#endif // FT_NOC_LINK_SLAB_HPP
