#include "noc/noc_stats.hpp"

namespace fasttrack {

std::uint64_t
NocStats::totalDeflections() const
{
    std::uint64_t total = 0;
    for (auto d : deflectionsByPort)
        total += d;
    return total;
}

std::uint64_t
NocStats::totalMisroutes() const
{
    std::uint64_t total = 0;
    for (auto d : misroutesByPort)
        total += d;
    return total;
}

void
NocStats::merge(const NocStats &other)
{
    injected += other.injected;
    delivered += other.delivered;
    selfDelivered += other.selfDelivered;
    shortHopTraversals += other.shortHopTraversals;
    expressHopTraversals += other.expressHopTraversals;
    for (std::size_t i = 0; i < deflectionsByPort.size(); ++i) {
        deflectionsByPort[i] += other.deflectionsByPort[i];
        misroutesByPort[i] += other.misroutesByPort[i];
    }
    laneDeflections += other.laneDeflections;
    exitBlocked += other.exitBlocked;
    injectionBlockedCycles += other.injectionBlockedCycles;
    totalLatency.merge(other.totalLatency);
    networkLatency.merge(other.networkLatency);
    hopCount.merge(other.hopCount);
    deflectionCount.merge(other.deflectionCount);
}

double
NocStats::sustainedRate(std::uint32_t pes, Cycle cycles) const
{
    if (cycles == 0 || pes == 0)
        return 0.0;
    return static_cast<double>(delivered) /
           (static_cast<double>(cycles) * pes);
}

double
NocStats::linkActivity(std::uint64_t total_links, Cycle cycles) const
{
    if (total_links == 0 || cycles == 0)
        return 0.0;
    const double traversals = static_cast<double>(shortHopTraversals) +
                              static_cast<double>(expressHopTraversals);
    return traversals /
           (static_cast<double>(total_links) * static_cast<double>(cycles));
}

void
NocStats::reset()
{
    *this = NocStats{};
}

} // namespace fasttrack
