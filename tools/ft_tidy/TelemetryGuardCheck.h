/**
 * ft-telemetry-guard: trace events may only be emitted through the
 * FT_TELEM / FT_TELEM_DYN macros (src/telemetry/sink.hpp). A bare
 * ThreadLog::emit() call compiles telemetry unconditionally into its
 * call site, defeating the zero-overhead contract that the sink-free
 * stepping instantiation contains no telemetry code at all.
 *
 * The check walks the macro-expansion stack of each emit() call; any
 * enclosing FT_TELEM/FT_TELEM_DYN expansion sanctions it. Suppress a
 * deliberate direct call (e.g. in telemetry's own tests) with
 * `// ft-lint: allow(ft-telemetry-guard)`.
 */

#ifndef FT_TOOLS_FT_TIDY_TELEMETRYGUARDCHECK_H
#define FT_TOOLS_FT_TIDY_TELEMETRYGUARDCHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::ft {

class TelemetryGuardCheck : public ClangTidyCheck
{
  public:
    TelemetryGuardCheck(StringRef Name, ClangTidyContext *Context)
        : ClangTidyCheck(Name, Context)
    {
    }
    bool isLanguageVersionSupported(const LangOptions &LangOpts) const
        override
    {
        return LangOpts.CPlusPlus;
    }
    void registerMatchers(ast_matchers::MatchFinder *Finder) override;
    void check(const ast_matchers::MatchFinder::MatchResult &Result)
        override;
};

} // namespace clang::tidy::ft

#endif // FT_TOOLS_FT_TIDY_TELEMETRYGUARDCHECK_H
