#include "HotpathPurityCheck.h"

#include "FtCheckCommon.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::ft {

namespace {

AST_MATCHER(FunctionDecl, isFtHot)
{
    for (const auto *A : Node.specific_attrs<AnnotateAttr>())
        if (A->getAnnotation() == "ft_hot")
            return true;
    return false;
}

/** Ancestor constraint shared by every violation matcher. */
auto inHotFunction()
{
    return hasAncestor(functionDecl(isFtHot()).bind("hot"));
}

} // namespace

void HotpathPurityCheck::registerMatchers(MatchFinder *Finder)
{
    Finder->addMatcher(cxxNewExpr(inHotFunction()).bind("new"), this);
    Finder->addMatcher(cxxDeleteExpr(inHotFunction()).bind("delete"),
                       this);
    Finder->addMatcher(cxxThrowExpr(inHotFunction()).bind("throw"),
                       this);
    Finder->addMatcher(
        callExpr(callee(functionDecl(hasAnyName(
                     "::malloc", "::calloc", "::realloc", "::free",
                     "::aligned_alloc", "::posix_memalign"))),
                 inHotFunction())
            .bind("malloc"),
        this);
    Finder->addMatcher(
        cxxMemberCallExpr(callee(cxxMethodDecl(isVirtual())),
                          inHotFunction())
            .bind("virtual-call"),
        this);
    Finder->addMatcher(
        cxxConstructExpr(hasDeclaration(cxxConstructorDecl(ofClass(
                             hasName("::std::function")))),
                         inHotFunction())
            .bind("std-function"),
        this);
}

void HotpathPurityCheck::check(const MatchFinder::MatchResult &Result)
{
    const SourceManager &SM = *Result.SourceManager;
    const auto *Hot = Result.Nodes.getNodeAs<FunctionDecl>("hot");
    const auto Emit = [&](SourceLocation Loc, llvm::StringRef What) {
        if (!inCheckedCode(SM, Loc, /*SkipRngFiles=*/false))
            return;
        if (isSuppressed(SM, Loc, "ft-hotpath-purity"))
            return;
        diag(SM.getExpansionLoc(Loc),
             "%0 in FT_HOT function %1; hot-path bodies must stay "
             "allocation-, throw-, virtual- and std::function-free")
            << What << (Hot ? Hot->getNameAsString() : "<unknown>");
    };

    if (const auto *New = Result.Nodes.getNodeAs<CXXNewExpr>("new"))
        Emit(New->getBeginLoc(), "new-expression");
    if (const auto *Del =
            Result.Nodes.getNodeAs<CXXDeleteExpr>("delete"))
        Emit(Del->getBeginLoc(), "delete-expression");
    if (const auto *Throw =
            Result.Nodes.getNodeAs<CXXThrowExpr>("throw"))
        Emit(Throw->getBeginLoc(), "throw-expression");
    if (const auto *Malloc =
            Result.Nodes.getNodeAs<CallExpr>("malloc"))
        Emit(Malloc->getBeginLoc(), "malloc-family call");
    if (const auto *Fn =
            Result.Nodes.getNodeAs<CXXConstructExpr>("std-function"))
        Emit(Fn->getBeginLoc(), "std::function construction");
    if (const auto *Virt = Result.Nodes.getNodeAs<CXXMemberCallExpr>(
            "virtual-call")) {
        const auto *Method =
            dyn_cast_or_null<CXXMethodDecl>(Virt->getDirectCallee());
        if (!Method)
            return;
        // Qualified calls (Base::f()) are statically bound, and
        // final methods/classes devirtualize; neither costs dynamic
        // dispatch.
        const auto *ME = dyn_cast<MemberExpr>(
            Virt->getCallee()->IgnoreParenImpCasts());
        if (ME && ME->hasQualifier())
            return;
        if (Method->hasAttr<FinalAttr>() ||
            Method->getParent()->hasAttr<FinalAttr>())
            return;
        Emit(Virt->getBeginLoc(), "virtual call");
    }
}

} // namespace clang::tidy::ft
