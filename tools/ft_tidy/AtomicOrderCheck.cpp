#include "AtomicOrderCheck.h"

#include "FtCheckCommon.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::ft {

namespace {

/** The atomic class families of libstdc++ and libc++: integral and
 *  floating atomics route their members through __atomic_base /
 *  __atomic_float rather than the std::atomic primary template. */
auto atomicClass()
{
    return cxxRecordDecl(hasAnyName(
        "::std::atomic", "::std::__atomic_base", "::std::__atomic_float",
        "::std::atomic_flag", "::std::atomic_ref"));
}

bool isMemoryOrderType(QualType T)
{
    if (const auto *ET = T.getNonReferenceType()
                             .getCanonicalType()
                             ->getAs<EnumType>())
        return ET->getDecl()->getName() == "memory_order";
    return false;
}

} // namespace

void AtomicOrderCheck::registerMatchers(MatchFinder *Finder)
{
    Finder->addMatcher(
        cxxMemberCallExpr(callee(cxxMethodDecl(ofClass(atomicClass()))))
            .bind("member"),
        this);
    Finder->addMatcher(
        cxxOperatorCallExpr(
            callee(cxxMethodDecl(ofClass(atomicClass()))))
            .bind("operator"),
        this);
}

void AtomicOrderCheck::check(const MatchFinder::MatchResult &Result)
{
    const SourceManager &SM = *Result.SourceManager;
    const auto Emit = [&](SourceLocation Loc, llvm::StringRef Msg) {
        if (!inCheckedCode(SM, Loc, /*SkipRngFiles=*/false))
            return;
        if (isSuppressed(SM, Loc, "ft-atomic-order"))
            return;
        diag(SM.getExpansionLoc(Loc), "%0") << Msg;
    };

    if (const auto *Member =
            Result.Nodes.getNodeAs<CXXMemberCallExpr>("member")) {
        if (isa<CXXConversionDecl>(Member->getCalleeDecl())) {
            Emit(Member->getBeginLoc(),
                 "implicit atomic load via conversion operator uses "
                 "seq_cst; call load() with an explicit "
                 "std::memory_order");
            return;
        }
        for (const Expr *Arg : Member->arguments()) {
            const auto *Def = dyn_cast<CXXDefaultArgExpr>(Arg);
            if (Def && isMemoryOrderType(Def->getType())) {
                Emit(Member->getBeginLoc(),
                     "atomic operation relies on the defaulted "
                     "seq_cst memory order; pass an explicit "
                     "std::memory_order (and justify anything "
                     "stronger than relaxed)");
                return;
            }
        }
    }
    if (const auto *Op =
            Result.Nodes.getNodeAs<CXXOperatorCallExpr>("operator"))
        Emit(Op->getBeginLoc(),
             "atomic operator form is an implicit seq_cst operation; "
             "use the named member function with an explicit "
             "std::memory_order");
}

} // namespace clang::tidy::ft
