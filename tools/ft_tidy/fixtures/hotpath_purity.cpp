// Fixture for the ft-hotpath-purity check (driven by
// run_check_tests.py). FT_HOT comes from the real annotation header
// so the fixture exercises exactly what src/ uses.

#include <cstdlib>
#include <functional>

#include "common/annotations.hpp"

struct Base
{
    virtual ~Base() = default;
    virtual int weight() const { return 1; }
    virtual int bias() const { return 0; }
};

struct Leaf final : Base
{
    int weight() const override { return 2; }
};

// --- positive cases ----------------------------------------------------

FT_HOT int hotAllocates(int n)
{
    int *scratch = new int[n]; // expect-warning: ft-hotpath-purity
    const int first = scratch[0];
    delete[] scratch; // expect-warning: ft-hotpath-purity
    return first;
}

FT_HOT void *hotMallocs(std::size_t n)
{
    return std::malloc(n); // expect-warning: ft-hotpath-purity
}

FT_HOT int hotThrows(int v)
{
    if (v < 0)
        throw v; // expect-warning: ft-hotpath-purity
    return v;
}

FT_HOT int hotVirtualCall(const Base &b)
{
    return b.weight(); // expect-warning: ft-hotpath-purity
}

FT_HOT int hotTypeErases()
{
    std::function<int()> f = // expect-warning: ft-hotpath-purity
        [] { return 7; };
    return f();
}

// --- negative cases ----------------------------------------------------

int coldAllocates(int n)
{
    int *scratch = new int[n]; // not FT_HOT: fine
    const int first = scratch[0];
    delete[] scratch;
    return first;
}

FT_HOT int hotStaticBound(const Base &b)
{
    return b.Base::weight(); // qualified: statically bound
}

FT_HOT int hotFinalCall(const Leaf &l)
{
    return l.weight(); // final override: devirtualizes
}

FT_HOT int hotPlainArithmetic(int a, int b)
{
    return a * 31 + b;
}

// --- suppression -------------------------------------------------------

FT_HOT int hotSanctioned(int n)
{
    int *p = new int[n]; // ft-lint: allow(ft-hotpath-purity)
    const int v = p[0];
    // ft-lint: allow(ft-hotpath-purity)
    delete[] p;
    return v;
}
