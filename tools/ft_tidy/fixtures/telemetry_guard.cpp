// Fixture for the ft-telemetry-guard check (driven by
// run_check_tests.py). Uses the real sink header so the fixture
// exercises exactly the macros src/ uses.

#include "telemetry/sink.hpp"

namespace tel = fasttrack::telemetry;
using tel::EventKind;

// --- positive case -----------------------------------------------------

void bareEmit(tel::ThreadLog &log)
{
    log.emit(EventKind::inject, // expect-warning: ft-telemetry-guard
             1, 2, 0, 42, 0);
}

// --- negative cases ----------------------------------------------------

template <bool HasTelem> void staticallyGated(tel::ThreadLog *log)
{
    FT_TELEM(HasTelem, log, EventKind::route, 3, 4, 1, 43, 0);
}
template void staticallyGated<true>(tel::ThreadLog *);
template void staticallyGated<false>(tel::ThreadLog *);

void dynamicallyGated(tel::ThreadLog *log)
{
    FT_TELEM_DYN(log, EventKind::eject, 5, 6, 2, 44, 0);
}

// --- suppression -------------------------------------------------------

void sanctionedBareEmit(tel::ThreadLog &log)
{
    log.emit(EventKind::deflect, // ft-lint: allow(ft-telemetry-guard)
             7, 8, 3, 45, 0);
}
