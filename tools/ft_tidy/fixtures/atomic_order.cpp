// Fixture for the ft-atomic-order check (driven by
// run_check_tests.py).

#include <atomic>
#include <cstdint>

std::atomic<std::uint64_t> counter{0};
std::atomic<bool> flag{false};
std::atomic<int *> slot{nullptr};

// --- positive cases: defaulted seq_cst ---------------------------------

std::uint64_t loadDefault()
{
    return counter.load(); // expect-warning: ft-atomic-order
}

void storeDefault(std::uint64_t v)
{
    counter.store(v); // expect-warning: ft-atomic-order
}

std::uint64_t rmwDefault()
{
    return counter.fetch_add(1); // expect-warning: ft-atomic-order
}

bool exchangeDefault()
{
    return flag.exchange(true); // expect-warning: ft-atomic-order
}

int *pointerLoadDefault()
{
    return slot.load(); // expect-warning: ft-atomic-order
}

// --- positive cases: operator forms ------------------------------------

std::uint64_t opIncrement()
{
    return ++counter; // expect-warning: ft-atomic-order
}

void opAssign(std::uint64_t v)
{
    counter = v; // expect-warning: ft-atomic-order
}

std::uint64_t implicitConversionLoad()
{
    return counter; // expect-warning: ft-atomic-order
}

// --- negative cases: explicit orders -----------------------------------

std::uint64_t loadExplicit()
{
    return counter.load(std::memory_order_relaxed);
}

void storeExplicit(std::uint64_t v)
{
    counter.store(v, std::memory_order_release);
}

std::uint64_t rmwExplicit()
{
    return counter.fetch_add(1, std::memory_order_acq_rel);
}

bool casExplicit(std::uint64_t expected)
{
    return counter.compare_exchange_strong(
        expected, expected + 1, std::memory_order_acq_rel,
        std::memory_order_acquire);
}

// --- suppression -------------------------------------------------------

std::uint64_t sanctionedDefault()
{
    return counter.load(); // ft-lint: allow(ft-atomic-order)
}
