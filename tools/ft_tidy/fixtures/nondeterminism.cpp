// Fixture for the ft-nondeterminism check (driven by
// run_check_tests.py; `// expect-warning:` marks lines that must
// diagnose, everything else must stay silent).

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <map>
#include <random>
#include <unordered_map>
#include <unordered_set>

// --- positive cases ----------------------------------------------------

int rawRand()
{
    return rand(); // expect-warning: ft-nondeterminism
}

void seedFromTime()
{
    srand(static_cast<unsigned>( // expect-warning: ft-nondeterminism
        time(nullptr)));         // expect-warning: ft-nondeterminism
}

unsigned hardwareEntropy()
{
    std::random_device rd; // expect-warning: ft-nondeterminism
    return rd();
}

long long wallClock()
{
    return std::chrono::steady_clock::now() // expect-warning: ft-nondeterminism
        .time_since_epoch()
        .count();
}

int unorderedRangeFor(const std::unordered_map<int, int> &table)
{
    int sum = 0;
    for (const auto &kv : table) // expect-warning: ft-nondeterminism
        sum += kv.second;
    return sum;
}

int unorderedIterWalk(const std::unordered_set<int> &seen)
{
    int sum = 0;
    for (auto it = seen.begin(); // expect-warning: ft-nondeterminism
         it != seen.end(); ++it)
        sum += *it;
    return sum;
}

// --- negative cases ----------------------------------------------------

int keyedLookup(const std::unordered_map<int, int> &table, int key)
{
    const auto it = table.find(key);
    return it == table.end() ? 0 : it->second;
}

int orderedRangeFor(const std::map<int, int> &table)
{
    int sum = 0;
    for (const auto &kv : table)
        sum += kv.second;
    return sum;
}

int seededEngine()
{
    std::mt19937 engine(12345); // explicit seed: deterministic
    return static_cast<int>(engine());
}

// --- suppression -------------------------------------------------------

long long sanctionedWallClock()
{
    return std::chrono::steady_clock::now() // ft-lint: allow(ft-nondeterminism)
        .time_since_epoch()
        .count();
}

int legacySuppression(const std::unordered_map<int, int> &table)
{
    int sum = 0;
    for (const auto &kv : table) // det-lint: allow(unordered-iter)
        sum += kv.second;
    return sum;
}
