/**
 * ft-hotpath-purity: functions carrying the FT_HOT annotation
 * (src/common/annotations.hpp, expanding to
 * [[clang::annotate("ft_hot")]]) must stay free of:
 *
 *  - allocation: new/delete expressions and malloc-family calls
 *  - exceptions: throw expressions
 *  - dynamic dispatch: unqualified calls to non-final virtual methods
 *  - std::function construction (type-erased callables allocate and
 *    indirect; the stepping core passes templated callables instead)
 *
 * FT_ASSERT is fine: it aborts via [[noreturn]] panicImpl and never
 * throws. Indirect allocation inside callees is out of scope (the
 * check is per-body, not a call-graph analysis); annotate the callee
 * FT_HOT to extend coverage. Suppress a deliberate exception with
 * `// ft-lint: allow(ft-hotpath-purity)`.
 */

#ifndef FT_TOOLS_FT_TIDY_HOTPATHPURITYCHECK_H
#define FT_TOOLS_FT_TIDY_HOTPATHPURITYCHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::ft {

class HotpathPurityCheck : public ClangTidyCheck
{
  public:
    HotpathPurityCheck(StringRef Name, ClangTidyContext *Context)
        : ClangTidyCheck(Name, Context)
    {
    }
    bool isLanguageVersionSupported(const LangOptions &LangOpts) const
        override
    {
        return LangOpts.CPlusPlus;
    }
    void registerMatchers(ast_matchers::MatchFinder *Finder) override;
    void check(const ast_matchers::MatchFinder::MatchResult &Result)
        override;
};

} // namespace clang::tidy::ft

#endif // FT_TOOLS_FT_TIDY_HOTPATHPURITYCHECK_H
