#include "FtCheckCommon.h"

#include "clang/Basic/FileManager.h"

namespace clang::tidy::ft {

namespace {

/** The raw text of the line containing @p Loc ("" on failure). */
llvm::StringRef lineText(const SourceManager &SM, SourceLocation Loc)
{
    const FileID FID = SM.getFileID(Loc);
    bool Invalid = false;
    const llvm::StringRef Buffer = SM.getBufferData(FID, &Invalid);
    if (Invalid)
        return {};
    const unsigned Offset = SM.getFileOffset(Loc);
    if (Offset >= Buffer.size())
        return {};
    const std::size_t Begin = Buffer.rfind('\n', Offset);
    const std::size_t Start =
        Begin == llvm::StringRef::npos ? 0 : Begin + 1;
    const std::size_t End = Buffer.find('\n', Offset);
    return Buffer.slice(Start,
                        End == llvm::StringRef::npos ? Buffer.size()
                                                     : End);
}

bool lineAllows(llvm::StringRef Line, llvm::StringRef CheckName,
                llvm::ArrayRef<llvm::StringRef> LegacyAliases)
{
    llvm::StringRef Bare = CheckName;
    Bare.consume_front("ft-");
    for (llvm::StringRef Marker : {"ft-lint:", "det-lint:"}) {
        std::size_t Pos = Line.find(Marker);
        while (Pos != llvm::StringRef::npos) {
            llvm::StringRef Rest =
                Line.drop_front(Pos + Marker.size()).ltrim();
            if (Rest.consume_front("allow(")) {
                const llvm::StringRef Rule =
                    Rest.take_until([](char C) { return C == ')'; })
                        .trim();
                llvm::StringRef BareRule = Rule;
                BareRule.consume_front("ft-");
                if (Rule == CheckName || BareRule == Bare)
                    return true;
                for (llvm::StringRef Alias : LegacyAliases)
                    if (Rule == Alias)
                        return true;
            }
            Pos = Line.find(Marker, Pos + Marker.size());
        }
    }
    return false;
}

} // namespace

bool isSuppressed(const SourceManager &SM, SourceLocation Loc,
                  llvm::StringRef CheckName,
                  llvm::ArrayRef<llvm::StringRef> LegacyAliases)
{
    if (Loc.isInvalid())
        return false;
    const SourceLocation Spelling = SM.getExpansionLoc(Loc);
    if (lineAllows(lineText(SM, Spelling), CheckName, LegacyAliases))
        return true;
    // Also honor a suppression on the line directly above, for call
    // sites too long to carry a trailing comment.
    const unsigned Line = SM.getExpansionLineNumber(Spelling);
    if (Line > 1) {
        const SourceLocation Above = SM.translateLineCol(
            SM.getFileID(Spelling), Line - 1, 1);
        if (Above.isValid() &&
            lineAllows(lineText(SM, Above), CheckName, LegacyAliases))
            return true;
    }
    return false;
}

bool inCheckedCode(const SourceManager &SM, SourceLocation Loc,
                   bool SkipRngFiles)
{
    if (Loc.isInvalid())
        return false;
    const SourceLocation Expansion = SM.getExpansionLoc(Loc);
    if (SM.isInSystemHeader(Expansion))
        return false;
    if (SkipRngFiles) {
        const llvm::StringRef File = SM.getFilename(Expansion);
        if (File.contains("common/rng."))
            return false;
    }
    return true;
}

} // namespace clang::tidy::ft
