#include "NondeterminismCheck.h"

#include "FtCheckCommon.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::ft {

namespace {

/** Type matcher: a std::unordered_{map,set,multimap,multiset}. */
auto unorderedContainer()
{
    return hasUnqualifiedDesugaredType(recordType(hasDeclaration(
        classTemplateSpecializationDecl(hasAnyName(
            "::std::unordered_map", "::std::unordered_set",
            "::std::unordered_multimap",
            "::std::unordered_multiset")))));
}

} // namespace

void NondeterminismCheck::registerMatchers(MatchFinder *Finder)
{
    // Raw entropy / wall-clock C entry points.
    Finder->addMatcher(
        callExpr(callee(functionDecl(hasAnyName(
                     "::rand", "::srand", "::random", "::srandom",
                     "::rand_r", "::drand48", "::lrand48", "::mrand48",
                     "::time", "::clock", "::gettimeofday",
                     "::clock_gettime", "::timespec_get"))))
            .bind("entropy-call"),
        this);
    // std::random_device construction.
    Finder->addMatcher(
        cxxConstructExpr(hasDeclaration(cxxConstructorDecl(ofClass(
                             hasName("::std::random_device")))))
            .bind("random-device"),
        this);
    // std::chrono::*_clock::now() (steady, system, high_resolution).
    Finder->addMatcher(
        callExpr(callee(cxxMethodDecl(
                     hasName("now"),
                     ofClass(matchesName("::std::chrono::")))))
            .bind("clock-now"),
        this);
    // Order-sensitive iteration of unordered containers.
    Finder->addMatcher(
        cxxForRangeStmt(hasRangeInit(expr(anyOf(
                            hasType(unorderedContainer()),
                            hasType(references(unorderedContainer()))))))
            .bind("unordered-range-for"),
        this);
    Finder->addMatcher(
        cxxMemberCallExpr(
            callee(cxxMethodDecl(hasAnyName("begin", "cbegin"))),
            on(hasType(unorderedContainer())))
            .bind("unordered-begin"),
        this);
}

void NondeterminismCheck::check(
    const MatchFinder::MatchResult &Result)
{
    const SourceManager &SM = *Result.SourceManager;
    static const llvm::StringRef LegacyAliases[] = {"nondet",
                                                    "unordered-iter"};
    const auto Emit = [&](SourceLocation Loc, llvm::StringRef Msg) {
        if (!inCheckedCode(SM, Loc, /*SkipRngFiles=*/true))
            return;
        if (isSuppressed(SM, Loc, "ft-nondeterminism", LegacyAliases))
            return;
        diag(SM.getExpansionLoc(Loc), "%0") << Msg;
    };

    if (const auto *Call =
            Result.Nodes.getNodeAs<CallExpr>("entropy-call"))
        Emit(Call->getBeginLoc(),
             "call to a nondeterministic libc entry point; draw from "
             "the deterministic generator in common/rng instead");
    if (const auto *RD =
            Result.Nodes.getNodeAs<CXXConstructExpr>("random-device"))
        Emit(RD->getBeginLoc(),
             "std::random_device is nondeterministic; seed an "
             "explicit Rng from common/rng instead");
    if (const auto *Now =
            Result.Nodes.getNodeAs<CallExpr>("clock-now"))
        Emit(Now->getBeginLoc(),
             "wall-clock read; simulated results must not depend on "
             "host time (host-profiling uses need an explicit "
             "ft-lint allow)");
    if (const auto *For = Result.Nodes.getNodeAs<CXXForRangeStmt>(
            "unordered-range-for"))
        Emit(For->getForLoc(),
             "range-for over an unordered container: visit order is "
             "implementation-defined and can leak into results; use "
             "an ordered container or sort first");
    if (const auto *Begin = Result.Nodes.getNodeAs<CXXMemberCallExpr>(
            "unordered-begin"))
        Emit(Begin->getBeginLoc(),
             "iterator walk over an unordered container: visit order "
             "is implementation-defined and can leak into results; "
             "use an ordered container or sort first");
}

} // namespace clang::tidy::ft
