/**
 * ft-nondeterminism: AST-accurate successor of the regex `nondet` and
 * `unordered-iter` rules from scripts/lint_determinism.py.
 *
 * Flags, anywhere outside common/rng:
 *  - calls to rand()/srand()/random()/*rand48, time(), clock(),
 *    gettimeofday(), clock_gettime()
 *  - construction of std::random_device
 *  - std::chrono *_clock::now() reads
 *  - range-for over std::unordered_{map,set,multimap,multiset}
 *  - .begin()/.cbegin() walks of those containers
 *
 * Keyed lookups on unordered containers are fine and never flagged.
 * Suppress a deliberate use with `// ft-lint: allow(ft-nondeterminism)`.
 */

#ifndef FT_TOOLS_FT_TIDY_NONDETERMINISMCHECK_H
#define FT_TOOLS_FT_TIDY_NONDETERMINISMCHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::ft {

class NondeterminismCheck : public ClangTidyCheck
{
  public:
    NondeterminismCheck(StringRef Name, ClangTidyContext *Context)
        : ClangTidyCheck(Name, Context)
    {
    }
    bool isLanguageVersionSupported(const LangOptions &LangOpts) const
        override
    {
        return LangOpts.CPlusPlus;
    }
    void registerMatchers(ast_matchers::MatchFinder *Finder) override;
    void check(const ast_matchers::MatchFinder::MatchResult &Result)
        override;
};

} // namespace clang::tidy::ft

#endif // FT_TOOLS_FT_TIDY_NONDETERMINISMCHECK_H
