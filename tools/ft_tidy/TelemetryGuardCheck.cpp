#include "TelemetryGuardCheck.h"

#include "FtCheckCommon.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Lex/Lexer.h"

using namespace clang::ast_matchers;

namespace clang::tidy::ft {

void TelemetryGuardCheck::registerMatchers(MatchFinder *Finder)
{
    Finder->addMatcher(
        cxxMemberCallExpr(
            callee(cxxMethodDecl(
                hasName("emit"),
                ofClass(hasName(
                    "::fasttrack::telemetry::ThreadLog")))))
            .bind("emit"),
        this);
}

void TelemetryGuardCheck::check(const MatchFinder::MatchResult &Result)
{
    const auto *Emit = Result.Nodes.getNodeAs<CXXMemberCallExpr>("emit");
    if (!Emit)
        return;
    const SourceManager &SM = *Result.SourceManager;

    // Sanctioned when any frame of the expansion stack is the
    // FT_TELEM / FT_TELEM_DYN macro.
    SourceLocation Loc = Emit->getBeginLoc();
    while (Loc.isMacroID()) {
        const StringRef Macro =
            Lexer::getImmediateMacroName(Loc, SM, getLangOpts());
        if (Macro == "FT_TELEM" || Macro == "FT_TELEM_DYN")
            return;
        Loc = SM.getImmediateMacroCallerLoc(Loc);
    }

    if (!inCheckedCode(SM, Emit->getBeginLoc(),
                       /*SkipRngFiles=*/false))
        return;
    if (isSuppressed(SM, Emit->getBeginLoc(), "ft-telemetry-guard"))
        return;
    diag(SM.getExpansionLoc(Emit->getBeginLoc()),
         "bare ThreadLog::emit() call; route telemetry through "
         "FT_TELEM (compile-time gated) or FT_TELEM_DYN so the "
         "sink-free instantiation compiles it out");
}

} // namespace clang::tidy::ft
