/**
 * ft-atomic-order: every std::atomic operation must spell its
 * std::memory_order explicitly — a defaulted seq_cst argument and the
 * operator forms (++, --, +=, =, implicit conversion-load) are
 * flagged. The sched and telemetry layers choose their orders
 * deliberately (relaxed statistics counters, acq_rel ownership CAS,
 * release publication; see src/sched/work_stealing_pool.cpp), so a
 * silent seq_cst default is either an unnecessary fence or an
 * unreviewed ordering decision.
 *
 * Suppress a deliberate default with
 * `// ft-lint: allow(ft-atomic-order)`.
 */

#ifndef FT_TOOLS_FT_TIDY_ATOMICORDERCHECK_H
#define FT_TOOLS_FT_TIDY_ATOMICORDERCHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::ft {

class AtomicOrderCheck : public ClangTidyCheck
{
  public:
    AtomicOrderCheck(StringRef Name, ClangTidyContext *Context)
        : ClangTidyCheck(Name, Context)
    {
    }
    bool isLanguageVersionSupported(const LangOptions &LangOpts) const
        override
    {
        return LangOpts.CPlusPlus;
    }
    void registerMatchers(ast_matchers::MatchFinder *Finder) override;
    void check(const ast_matchers::MatchFinder::MatchResult &Result)
        override;
};

} // namespace clang::tidy::ft

#endif // FT_TOOLS_FT_TIDY_ATOMICORDERCHECK_H
