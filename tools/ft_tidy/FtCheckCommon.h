/**
 * Shared helpers for the ft-* clang-tidy checks: the
 * `// ft-lint: allow(<rule>)` line-suppression mechanism and the
 * common "is this location ours to diagnose" filter.
 *
 * Built only as part of the ft_tidy plugin module (see CMakeLists
 * here); never compiled into the simulator.
 */

#ifndef FT_TOOLS_FT_TIDY_FTCHECKCOMMON_H
#define FT_TOOLS_FT_TIDY_FTCHECKCOMMON_H

#include "clang/Basic/SourceLocation.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/ArrayRef.h"
#include "llvm/ADT/StringRef.h"

namespace clang::tidy::ft {

/**
 * True when the line holding @p Loc (or the line directly above it)
 * carries a suppression comment naming @p CheckName:
 *
 *     risky();                 // ft-lint: allow(ft-nondeterminism)
 *
 * The rule may be written with or without its "ft-" prefix, or by any
 * name in @p LegacyAliases. The legacy "det-lint:" marker from
 * scripts/lint_determinism.py is honored too so historical
 * suppressions keep working.
 */
bool isSuppressed(const SourceManager &SM, SourceLocation Loc,
                  llvm::StringRef CheckName,
                  llvm::ArrayRef<llvm::StringRef> LegacyAliases = {});

/**
 * Common location filter: false for invalid locations, system
 * headers, and (when @p SkipRngFiles) the sanctioned entropy source
 * common/rng.*. Macro-expansion locations are mapped to their
 * expansion site first.
 */
bool inCheckedCode(const SourceManager &SM, SourceLocation Loc,
                   bool SkipRngFiles);

} // namespace clang::tidy::ft

#endif // FT_TOOLS_FT_TIDY_FTCHECKCOMMON_H
