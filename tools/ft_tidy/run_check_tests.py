#!/usr/bin/env python3
"""Fixture test driver for the ft-tidy plugin checks.

Runs clang-tidy with the ft_tidy module loaded and exactly one ft-*
check enabled over one fixture file, then diffs the emitted warnings
against the fixture's `// expect-warning: <check>` annotations:

  - every annotated line must produce a warning of that check
    (positive cases), and
  - no unannotated line may produce one (negative and suppression
    cases).

Exit status: 0 on an exact match, 1 on any difference, 77 (the ctest
SKIP_RETURN_CODE) when clang-tidy or the plugin module is missing, so
local gcc-only environments skip instead of fail.

Usage:
    run_check_tests.py --clang-tidy PATH --plugin PATH.so \
        --check ft-nondeterminism --fixture fixtures/nondeterminism.cpp \
        --include DIR [--include DIR...]
"""

from __future__ import annotations

import argparse
import re
import shutil
import subprocess
import sys
from pathlib import Path

SKIP = 77

EXPECT_RE = re.compile(r"//\s*expect-warning:\s*([a-z-]+)")


def expected_lines(fixture: Path, check: str) -> set[int]:
    lines = set()
    for lineno, text in enumerate(
            fixture.read_text().splitlines(), 1):
        m = EXPECT_RE.search(text)
        if m and m.group(1) == check:
            lines.add(lineno)
    return lines


def emitted_lines(output: str, fixture: Path, check: str) -> set[int]:
    # clang-tidy diagnostic lines: /path/file.cpp:LINE:COL: warning:
    # message [check-name]
    hit_re = re.compile(
        rf"^(?P<path>[^:\s][^:]*):(?P<line>\d+):\d+:\s+warning:.*"
        rf"\[{re.escape(check)}\]\s*$")
    lines = set()
    for raw in output.splitlines():
        m = hit_re.match(raw)
        if m and Path(m.group("path")).name == fixture.name:
            lines.add(int(m.group("line")))
    return lines


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    ap.add_argument("--clang-tidy", required=True)
    ap.add_argument("--plugin", required=True)
    ap.add_argument("--check", required=True)
    ap.add_argument("--fixture", required=True, type=Path)
    ap.add_argument("--include", action="append", default=[],
                    help="-I directory for the fixture compilation")
    ap.add_argument("--std", default="c++20")
    args = ap.parse_args()

    clang_tidy = shutil.which(args.clang_tidy) or args.clang_tidy
    if not Path(clang_tidy).exists():
        print(f"SKIP: clang-tidy not found: {args.clang_tidy}")
        return SKIP
    plugin = Path(args.plugin)
    if not plugin.exists():
        print(f"SKIP: plugin module not built: {plugin}")
        return SKIP
    if not args.fixture.exists():
        print(f"error: no such fixture: {args.fixture}",
              file=sys.stderr)
        return 1

    cmd = [
        clang_tidy,
        f"-load={plugin}",
        f"-checks=-*,{args.check}",
        str(args.fixture),
        "--",
        f"-std={args.std}",
    ] + [f"-I{d}" for d in args.include]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if "Unable to find module" in proc.stderr or \
            "error: unable to load plugin" in proc.stderr.lower():
        print(f"SKIP: clang-tidy cannot load {plugin}:\n{proc.stderr}")
        return SKIP
    if "error:" in proc.stdout or "error:" in proc.stderr:
        print(f"fixture failed to parse:\n$ {' '.join(cmd)}\n"
              f"{proc.stdout}\n{proc.stderr}", file=sys.stderr)
        return 1

    want = expected_lines(args.fixture, args.check)
    got = emitted_lines(proc.stdout, args.fixture, args.check)

    missing = sorted(want - got)
    unexpected = sorted(got - want)
    if missing or unexpected:
        print(f"$ {' '.join(cmd)}\n{proc.stdout}", file=sys.stderr)
        for line in missing:
            print(f"FAIL: expected {args.check} warning at "
                  f"{args.fixture}:{line}, none emitted",
                  file=sys.stderr)
        for line in unexpected:
            print(f"FAIL: unexpected {args.check} warning at "
                  f"{args.fixture}:{line}", file=sys.stderr)
        return 1

    print(f"OK: {args.check}: {len(want)} expected warning(s) "
          f"matched, no strays")
    return 0


if __name__ == "__main__":
    sys.exit(main())
