/**
 * The ft-tidy clang-tidy plugin module: registers the four FastTrack
 * project checks under the ft- prefix. Loaded out-of-tree:
 *
 *     clang-tidy -load tools/ft_tidy/libft_tidy_module.so \
 *                -checks='-*,ft-*' -p build src/...
 *
 * The module deliberately links against no clang libraries; symbols
 * resolve from the hosting clang-tidy binary at dlopen time, which is
 * why the plugin must be built against headers of the same major
 * version as the clang-tidy that loads it (tools/ft_tidy/CMakeLists
 * and docs/static_analysis.md).
 */

#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "AtomicOrderCheck.h"
#include "HotpathPurityCheck.h"
#include "NondeterminismCheck.h"
#include "TelemetryGuardCheck.h"

namespace clang::tidy {

namespace ft {

class FtTidyModule : public ClangTidyModule
{
  public:
    void addCheckFactories(ClangTidyCheckFactories &Factories) override
    {
        Factories.registerCheck<NondeterminismCheck>(
            "ft-nondeterminism");
        Factories.registerCheck<HotpathPurityCheck>(
            "ft-hotpath-purity");
        Factories.registerCheck<AtomicOrderCheck>("ft-atomic-order");
        Factories.registerCheck<TelemetryGuardCheck>(
            "ft-telemetry-guard");
    }
};

} // namespace ft

static ClangTidyModuleRegistry::Add<ft::FtTidyModule>
    X("ft-module", "FastTrack determinism/hot-path/atomics checks.");

} // namespace clang::tidy
