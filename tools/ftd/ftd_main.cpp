/**
 * @file
 * ftd — the FastTrack sweep daemon: simulation-as-a-service.
 *
 * Binds the FtdServer (sim/ftd_server.hpp) on a TCP port and serves
 * sweepRequest frames until SIGINT/SIGTERM, sharing this host's
 * work-stealing pool, lockstep batch engine and blob cache across
 * every connected client. With --result-cache the cache survives
 * restarts, and because sweep keys are content-addressed a point any
 * client ever computed is a cache hit for all of them.
 *
 * Prints `ftd: listening on HOST:PORT` once serving (scripts parse
 * this to discover the port when started with --port 0).
 */

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "common/parallel.hpp"
#include "noc/batched_engine.hpp"
#include "sched/work_stealing_pool.hpp"
#include "sim/batch_runner.hpp"
#include "sim/ftd_server.hpp"
#include "sim/sweep_cache.hpp"
#include "telemetry/metrics.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
handleSignal(int)
{
    g_stop = 1;
}

void
usage(const char *prog)
{
    std::cerr
        << "usage: " << prog
        << " [--host H] [--port N] [--threads N] [--batch K]"
           " [--max-sessions N] [--idle-timeout-ms N]"
           " [--result-cache DIR] [--result-cache-max-bytes N]"
           " [--cache-stats FILE] [--drop-after-frames N]\n"
        << "  --host H             bind address (default 127.0.0.1)\n"
        << "  --port N             TCP port, 0 = ephemeral"
           " (default 7441)\n"
        << "  --threads N          cap pool workers at N\n"
        << "  --batch K            replicas per batched-engine group\n"
        << "  --max-sessions N     concurrent client sessions"
           " (default 8)\n"
        << "  --idle-timeout-ms N  drop sessions idle this long"
           " (default 30000)\n"
        << "  --result-cache DIR   persist sweep results in DIR\n"
        << "  --result-cache-max-bytes N\n"
        << "                       cap the disk store, evicting oldest\n"
        << "  --cache-stats FILE   write service/cache counters as CSV\n"
        << "                       on shutdown\n"
        << "  --drop-after-frames N\n"
        << "                       fault injection: hard-close every\n"
        << "                       session after N response frames\n";
}

long long
parsePositive(const char *prog, int argc, char **argv, int i,
              const char *flag, long long min_value)
{
    char *end = nullptr;
    const long long n =
        i + 1 < argc ? std::strtoll(argv[i + 1], &end, 10) : 0;
    if (i + 1 >= argc || end == argv[i + 1] || *end != '\0' ||
        n < min_value) {
        std::cerr << prog << ": " << flag << " needs an integer >= "
                  << min_value << "\n";
        usage(prog);
        std::exit(2);
    }
    return n;
}

const char *
parseValue(const char *prog, int argc, char **argv, int i,
           const char *flag)
{
    if (i + 1 >= argc || argv[i + 1][0] == '\0') {
        std::cerr << prog << ": " << flag << " needs a value\n";
        usage(prog);
        std::exit(2);
    }
    return argv[i + 1];
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace fasttrack;

    net::ServerConfig config;
    config.port = 7441;
    unsigned threads = 0;
    std::string cacheStatsFile;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--host") == 0) {
            config.host = parseValue(argv[0], argc, argv, i, "--host");
            ++i;
        } else if (std::strcmp(argv[i], "--port") == 0) {
            const long long n = parsePositive(argv[0], argc, argv, i,
                                              "--port", 0);
            if (n > 65535) {
                std::cerr << argv[0]
                          << ": --port must be in 0..65535\n";
                usage(argv[0]);
                return 2;
            }
            config.port = static_cast<std::uint16_t>(n);
            ++i;
        } else if (std::strcmp(argv[i], "--threads") == 0) {
            threads = static_cast<unsigned>(parsePositive(
                argv[0], argc, argv, i, "--threads", 1));
            ++i;
        } else if (std::strcmp(argv[i], "--batch") == 0) {
            const long long k = parsePositive(argv[0], argc, argv, i,
                                              "--batch", 1);
            if (k > static_cast<long long>(BatchedEngine::kMaxLanes)) {
                std::cerr << argv[0] << ": --batch must be in 1.."
                          << BatchedEngine::kMaxLanes << "\n";
                usage(argv[0]);
                return 2;
            }
            setDefaultBatchWidth(static_cast<std::uint32_t>(k));
            ++i;
        } else if (std::strcmp(argv[i], "--max-sessions") == 0) {
            config.maxSessions = static_cast<std::uint32_t>(
                parsePositive(argv[0], argc, argv, i,
                              "--max-sessions", 1));
            ++i;
        } else if (std::strcmp(argv[i], "--idle-timeout-ms") == 0) {
            config.idleTimeoutMs = static_cast<int>(parsePositive(
                argv[0], argc, argv, i, "--idle-timeout-ms", 1));
            ++i;
        } else if (std::strcmp(argv[i], "--result-cache") == 0) {
            sweepCache().setDir(
                parseValue(argv[0], argc, argv, i, "--result-cache"));
            ++i;
        } else if (std::strcmp(argv[i],
                               "--result-cache-max-bytes") == 0) {
            sweepCache().setMaxDiskBytes(static_cast<std::uint64_t>(
                parsePositive(argv[0], argc, argv, i,
                              "--result-cache-max-bytes", 1)));
            ++i;
        } else if (std::strcmp(argv[i], "--cache-stats") == 0) {
            cacheStatsFile =
                parseValue(argv[0], argc, argv, i, "--cache-stats");
            ++i;
        } else if (std::strcmp(argv[i], "--drop-after-frames") == 0) {
            config.dropAfterFrames =
                static_cast<std::uint64_t>(parsePositive(
                    argv[0], argc, argv, i, "--drop-after-frames", 1));
            ++i;
        } else {
            std::cerr << argv[0] << ": unknown flag '" << argv[i]
                      << "'\n";
            usage(argv[0]);
            return 2;
        }
    }

    parallel_detail::setDefaultParallelThreads(threads);
    sched::ensureGlobalPool();

    FtdServer server(config);
    std::string error;
    if (!server.start(error)) {
        std::cerr << argv[0] << ": cannot serve: " << error << "\n";
        return 1;
    }
    std::cout << "ftd: listening on " << config.host << ":"
              << server.boundPort() << std::endl;

    std::signal(SIGINT, handleSignal);
    std::signal(SIGTERM, handleSignal);
    while (g_stop == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    std::cout << "ftd: shutting down\n";
    server.stop();

    if (!cacheStatsFile.empty()) {
        std::ofstream os(cacheStatsFile);
        if (!os) {
            std::cerr << argv[0] << ": cache-stats: cannot write '"
                      << cacheStatsFile << "'\n";
            return 1;
        }
        telemetry::MetricsRegistry metrics;
        server.reportTo(metrics);
        metrics.writeSummary(os);
    }
    return 0;
}
