/**
 * @file
 * ftd_client — command-line client for the ftd sweep daemon.
 *
 * Runs an injection-rate sweep against one or more daemons and
 * prints the per-point results as CSV, exercising the full remote
 * path (handshake, pipelining, retry/backoff, local fallback). The
 * output is byte-identical to running the same sweep in-process, so
 * scripts can diff the two to validate a deployment:
 *
 *   ftd --port 0 &              # note the printed port
 *   ftd_client --remote 127.0.0.1:PORT --n 8
 *
 * With --no-local-cache the client skips its own sweep cache, forcing
 * every point over the wire (useful to measure daemon cache hits).
 */

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "net/endpoint.hpp"
#include "sched/work_stealing_pool.hpp"
#include "sim/experiment.hpp"
#include "sim/remote.hpp"
#include "sim/sweep_cache.hpp"
#include "telemetry/metrics.hpp"

namespace {

void
usage(const char *prog)
{
    std::cerr
        << "usage: " << prog
        << " --remote HOST:PORT[,HOST:PORT...] [--n N] [--d D]"
           " [--r R] [--hoplite] [--packets N] [--seed N]"
           " [--no-local-cache] [--stats FILE]\n"
        << "  --remote LIST      ftd endpoints to fan out to\n"
        << "  --n N              torus side (default 8)\n"
        << "  --d D              express link length (default 2)\n"
        << "  --r R              depopulation factor (default 2)\n"
        << "  --hoplite          sweep the Hoplite baseline instead\n"
        << "  --packets N        packets per PE (default 1024)\n"
        << "  --seed N           base workload seed (default 1)\n"
        << "  --no-local-cache   skip the client-side sweep cache so\n"
        << "                     every point travels the wire\n"
        << "  --stats FILE       write remote/client counters as CSV\n";
}

long long
parsePositive(const char *prog, int argc, char **argv, int i,
              const char *flag)
{
    char *end = nullptr;
    const long long n =
        i + 1 < argc ? std::strtoll(argv[i + 1], &end, 10) : 0;
    if (i + 1 >= argc || end == argv[i + 1] || *end != '\0' || n < 1) {
        std::cerr << prog << ": " << flag
                  << " needs a positive integer\n";
        usage(prog);
        std::exit(2);
    }
    return n;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace fasttrack;

    std::uint32_t n = 8, d = 2, r = 2;
    bool hoplite = false;
    std::uint32_t packets = 1024;
    std::uint64_t seed = 1;
    bool localCache = true;
    std::string statsFile;
    std::vector<net::Endpoint> endpoints;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--remote") == 0) {
            std::string error;
            if (i + 1 >= argc ||
                !net::parseEndpointList(argv[i + 1], endpoints,
                                        error)) {
                std::cerr << argv[0] << ": --remote: "
                          << (i + 1 >= argc ? "needs a value" : error)
                          << "\n";
                usage(argv[0]);
                return 2;
            }
            ++i;
        } else if (std::strcmp(argv[i], "--n") == 0) {
            n = static_cast<std::uint32_t>(
                parsePositive(argv[0], argc, argv, i, "--n"));
            ++i;
        } else if (std::strcmp(argv[i], "--d") == 0) {
            d = static_cast<std::uint32_t>(
                parsePositive(argv[0], argc, argv, i, "--d"));
            ++i;
        } else if (std::strcmp(argv[i], "--r") == 0) {
            r = static_cast<std::uint32_t>(
                parsePositive(argv[0], argc, argv, i, "--r"));
            ++i;
        } else if (std::strcmp(argv[i], "--hoplite") == 0) {
            hoplite = true;
        } else if (std::strcmp(argv[i], "--packets") == 0) {
            packets = static_cast<std::uint32_t>(
                parsePositive(argv[0], argc, argv, i, "--packets"));
            ++i;
        } else if (std::strcmp(argv[i], "--seed") == 0) {
            seed = static_cast<std::uint64_t>(
                parsePositive(argv[0], argc, argv, i, "--seed"));
            ++i;
        } else if (std::strcmp(argv[i], "--no-local-cache") == 0) {
            localCache = false;
        } else if (std::strcmp(argv[i], "--stats") == 0) {
            if (i + 1 >= argc || argv[i + 1][0] == '\0') {
                std::cerr << argv[0] << ": --stats needs a file\n";
                usage(argv[0]);
                return 2;
            }
            statsFile = argv[i + 1];
            ++i;
        } else {
            std::cerr << argv[0] << ": unknown flag '" << argv[i]
                      << "'\n";
            usage(argv[0]);
            return 2;
        }
    }
    if (endpoints.empty()) {
        std::cerr << argv[0] << ": --remote is required\n";
        usage(argv[0]);
        return 2;
    }

    sched::ensureGlobalPool();
    RemoteConfig remote;
    remote.endpoints = std::move(endpoints);
    remote.useLocalCache = localCache;
    setRemoteConfig(std::move(remote));

    NocUnderTest nut;
    nut.config = hoplite ? NocConfig::hoplite(n)
                         : NocConfig::fastTrack(n, d, r);
    nut.label = nut.config.describe();
    nut.config.validate();

    const std::vector<SweepPoint> points = injectionSweep(
        nut, TrafficPattern::random, injectionRateGrid(), packets,
        seed);

    std::cout << "config,rate,sustained,avg_latency,worst_latency,"
                 "completed\n";
    for (const SweepPoint &p : points) {
        std::cout << nut.label << "," << p.rate << ","
                  << p.result.sustainedRate() << ","
                  << p.result.avgLatency() << ","
                  << p.result.worstLatency() << ","
                  << (p.result.completed ? 1 : 0) << "\n";
    }

    if (!statsFile.empty()) {
        std::ofstream os(statsFile);
        if (!os) {
            std::cerr << argv[0] << ": --stats: cannot write '"
                      << statsFile << "'\n";
            return 1;
        }
        telemetry::MetricsRegistry metrics;
        reportRemoteStats(metrics);
        sweepCache().reportTo(metrics);
        metrics.writeSummary(os);
    }
    return 0;
}
