/**
 * @file
 * Fig 12 reproduction: average packet latency vs injection rate for a
 * 64-PE NoC under the four synthetic patterns. The FastTrack curves
 * should stay flat to much higher injection rates (higher saturation
 * throughput) than Hoplite.
 */

#include <iostream>

#include "bench_util.hpp"

#include "common/ascii_chart.hpp"
#include "sim/experiment.hpp"

using namespace fasttrack;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner(
        "Fig 12: average latency (cycles) vs injection rate, 64 PEs",
        "at the 100-cycle level FastTrack R=1 saturates at up to 5x "
        "higher injection (RANDOM/BITCOMPL), ~2x for LOCAL/TRANSPOSE");

    const auto lineup = standardLineup(8);
    // Latency plots focus on the pre/post saturation knee.
    const std::vector<double> rates = {0.01, 0.02, 0.05, 0.08, 0.10,
                                       0.12, 0.15, 0.20, 0.25, 0.30,
                                       0.40, 0.50};

    for (TrafficPattern pattern : kAllPatterns) {
        Table table(std::string(toString(pattern)) +
                    ": average latency by injection rate");
        std::vector<std::string> header{"inj-rate"};
        for (const auto &nut : lineup)
            header.push_back(nut.label);
        table.setHeader(header);

        std::vector<std::vector<SweepPoint>> sweeps;
        for (const auto &nut : lineup)
            sweeps.push_back(injectionSweep(nut, pattern, rates));

        for (std::size_t r = 0; r < rates.size(); ++r) {
            std::vector<std::string> row{Table::num(rates[r], 2)};
            for (const auto &sweep : sweeps)
                row.push_back(
                    Table::num(sweep[r].result.avgLatency(), 1));
            table.addRow(row);
        }
        table.print(std::cout);
        std::cout << "\n";

        if (!Table::csvMode()) {
            AsciiChart chart(std::string(toString(pattern)) +
                             " (avg latency vs injection rate, log y)");
            chart.setLogX(true);
            chart.setLogY(true);
            chart.setAxisLabels("injection rate", "cycles");
            for (std::size_t c = 0; c < lineup.size(); ++c) {
                std::vector<std::pair<double, double>> pts;
                for (const SweepPoint &p : sweeps[c])
                    pts.emplace_back(p.rate, p.result.avgLatency());
                chart.addSeries(lineup[c].label, std::move(pts));
            }
            chart.print(std::cout);
            std::cout << "\n";
        }
    }
    return 0;
}
