/**
 * @file
 * Fig 18 reproduction: short vs express link traversals (a) and
 * per-input-port deflection counts (b) for a 64-PE NoC under RANDOM
 * traffic. Express links should *reduce* total deflections.
 *
 * Table (a) is sourced from the telemetry metrics registry (one
 * TelemetrySession per lineup entry): the registry's events.route /
 * events.expressHop counters are the sink's independent count of the
 * same traversals NocStats tallies, and tests/test_telemetry.cpp pins
 * the two paths to agree. With --telemetry-dir the session also
 * exports Chrome traces, link heatmaps and metrics CSVs per config.
 */

#include <iostream>

#include "bench_util.hpp"
#include "sim/experiment.hpp"
#include "sim/telemetry_session.hpp"

using namespace fasttrack;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner(
        "Fig 18: link usage and deflections, 64 PEs, RANDOM",
        "more express hops and fewer short hops as depopulation "
        "decreases; West-input deflections drop ~25% vs Hoplite");

    const auto lineup = standardLineup(8);
    // Same order as the paper's bars: Hoplite, FT(64,2,2), FT(64,2,1).
    std::vector<NocUnderTest> ordered{lineup[2], lineup[1], lineup[0]};

    std::vector<SynthResult> results;
    std::vector<std::uint64_t> shortHops;
    std::vector<std::uint64_t> expressHops;
    std::vector<std::string> artifacts;
    for (const auto &nut : ordered) {
        telemetry::TelemetryConfig tcfg;
        tcfg.dir = bench::telemetryDir();
        tcfg.epoch = bench::telemetryEpoch();
        tcfg.filePrefix = bench::fileSafeLabel(nut.label) + "_";
        TelemetrySession session(std::move(tcfg));

        SyntheticWorkload workload;
        workload.pattern = TrafficPattern::random;
        workload.injectionRate = 0.5;
        const SimConfig sim{.telemetry = &session};
        results.push_back(
            runSynthetic(nut.config, nut.channels, workload, sim));

        // Link-class usage from the registry, not NocStats: route
        // events are short-wire traversals, expressHop events express-
        // wire traversals.
        shortHops.push_back(
            session.metrics().counterValue("events.route"));
        expressHops.push_back(
            session.metrics().counterValue("events.express_hop"));
        for (const std::string &p : session.finish())
            artifacts.push_back(p);
    }

    Table usage("(a) link traversals by class (telemetry registry)");
    usage.setHeader({"NoC", "short hops", "express hops",
                     "express share %"});
    for (std::size_t i = 0; i < ordered.size(); ++i) {
        const double total =
            static_cast<double>(shortHops[i] + expressHops[i]);
        usage.addRow({ordered[i].label, Table::num(shortHops[i]),
                      Table::num(expressHops[i]),
                      Table::num(total ? 100.0 *
                                             static_cast<double>(
                                                 expressHops[i]) /
                                             total
                                       : 0.0, 1)});
    }
    usage.print(std::cout);

    Table defl("(b) misroutes by input port (packets sent in a "
               "non-DOR direction)");
    defl.setHeader({"NoC", "W_EX", "N_EX", "W_SH", "N_SH", "total",
                    "lane-only downgrades"});
    for (std::size_t i = 0; i < ordered.size(); ++i) {
        const auto &s = results[i].stats;
        defl.addRow({ordered[i].label,
                     Table::num(s.misroutesByPort[0]),
                     Table::num(s.misroutesByPort[1]),
                     Table::num(s.misroutesByPort[2]),
                     Table::num(s.misroutesByPort[3]),
                     Table::num(s.totalMisroutes()),
                     Table::num(s.laneDeflections)});
    }
    std::cout << "\n";
    defl.print(std::cout);

    if (!artifacts.empty() && !Table::csvMode()) {
        std::cout << "\n# telemetry artifacts:\n";
        for (const std::string &p : artifacts)
            std::cout << "#   " << p << "\n";
    }
    return 0;
}
