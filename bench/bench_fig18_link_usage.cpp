/**
 * @file
 * Fig 18 reproduction: short vs express link traversals (a) and
 * per-input-port deflection counts (b) for a 64-PE NoC under RANDOM
 * traffic. Express links should *reduce* total deflections.
 */

#include <iostream>

#include "bench_util.hpp"
#include "sim/experiment.hpp"

using namespace fasttrack;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner(
        "Fig 18: link usage and deflections, 64 PEs, RANDOM",
        "more express hops and fewer short hops as depopulation "
        "decreases; West-input deflections drop ~25% vs Hoplite");

    const auto lineup = standardLineup(8);
    // Same order as the paper's bars: Hoplite, FT(64,2,2), FT(64,2,1).
    std::vector<NocUnderTest> ordered{lineup[2], lineup[1], lineup[0]};

    std::vector<SynthResult> results;
    for (const auto &nut : ordered) {
        SyntheticWorkload workload;
        workload.pattern = TrafficPattern::random;
        workload.injectionRate = 0.5;
        results.push_back(
            runSynthetic(nut.config, nut.channels, workload));
    }

    Table usage("(a) link traversals by class");
    usage.setHeader({"NoC", "short hops", "express hops",
                     "express share %"});
    for (std::size_t i = 0; i < ordered.size(); ++i) {
        const auto &s = results[i].stats;
        const double total = static_cast<double>(
            s.shortHopTraversals + s.expressHopTraversals);
        usage.addRow({ordered[i].label,
                      Table::num(s.shortHopTraversals),
                      Table::num(s.expressHopTraversals),
                      Table::num(total ? 100.0 *
                                             static_cast<double>(
                                                 s.expressHopTraversals) /
                                             total
                                       : 0.0, 1)});
    }
    usage.print(std::cout);

    Table defl("(b) misroutes by input port (packets sent in a "
               "non-DOR direction)");
    defl.setHeader({"NoC", "W_EX", "N_EX", "W_SH", "N_SH", "total",
                    "lane-only downgrades"});
    for (std::size_t i = 0; i < ordered.size(); ++i) {
        const auto &s = results[i].stats;
        defl.addRow({ordered[i].label,
                     Table::num(s.misroutesByPort[0]),
                     Table::num(s.misroutesByPort[1]),
                     Table::num(s.misroutesByPort[2]),
                     Table::num(s.misroutesByPort[3]),
                     Table::num(s.totalMisroutes()),
                     Table::num(s.laneDeflections)});
    }
    std::cout << "\n";
    defl.print(std::cout);
    return 0;
}
