/**
 * @file
 * Fig 16 reproduction: packet latency histogram of a 64-PE NoC
 * routing RANDOM traffic at <10% injection. The interesting number is
 * the worst case: express links shorten the deflection penalty.
 */

#include <iostream>

#include "bench_util.hpp"
#include "sim/experiment.hpp"

using namespace fasttrack;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner(
        "Fig 16: latency histogram, 64 PEs, RANDOM @ <10% injection",
        "worst-case latency ~7x smaller than Hoplite for FT(64,2,1), "
        "~3x for the depopulated FT(64,2,2)");

    const auto lineup = standardLineup(8);
    const double rate = 0.08;

    std::vector<SynthResult> results;
    for (const auto &nut : lineup) {
        SyntheticWorkload workload;
        workload.pattern = TrafficPattern::random;
        workload.injectionRate = rate;
        results.push_back(
            runSynthetic(nut.config, nut.channels, workload));
    }

    Table table("percentage of packets per log2 latency bucket");
    std::vector<std::string> header{"latency<"};
    for (const auto &nut : lineup)
        header.push_back(nut.label);
    table.setHeader(header);

    // Common bucket grid across the three histograms.
    std::uint64_t max_bound = 1;
    for (const auto &res : results) {
        while (max_bound <= res.worstLatency())
            max_bound *= 2;
    }
    for (std::uint64_t bound = 2; bound <= max_bound; bound *= 2) {
        std::vector<std::string> row{std::to_string(bound)};
        for (const auto &res : results) {
            std::uint64_t count = 0;
            for (const auto &[value, c] :
                 res.stats.totalLatency.bins()) {
                if (value >= bound / 2 && value < bound)
                    count += c;
            }
            const double pct = 100.0 * static_cast<double>(count) /
                               static_cast<double>(
                                   res.stats.totalLatency.count());
            row.push_back(count ? Table::num(pct, 2) : ".");
        }
        table.addRow(row);
    }
    table.print(std::cout);

    Table summary("latency summary (cycles) at 8% injection");
    summary.setHeader({"NoC", "mean", "p50", "p99", "worst"});
    for (std::size_t i = 0; i < lineup.size(); ++i) {
        const auto &h = results[i].stats.totalLatency;
        summary.addRow({lineup[i].label, Table::num(h.mean(), 1),
                        Table::num(h.percentile(50)),
                        Table::num(h.percentile(99)),
                        Table::num(h.max())});
    }
    std::cout << "\n";
    summary.print(std::cout);

    // The paper's big 7x/3x tail gaps develop as the baseline nears
    // saturation: repeat the summary at 30% injection, where Hoplite
    // is saturated but both FastTrack NoCs still have headroom.
    Table loaded("latency summary (cycles) at 30% injection "
                 "(Hoplite past saturation)");
    loaded.setHeader({"NoC", "mean", "p50", "p99", "worst"});
    for (const auto &nut : lineup) {
        SyntheticWorkload workload;
        workload.pattern = TrafficPattern::random;
        workload.injectionRate = 0.30;
        const SynthResult res =
            runSynthetic(nut.config, nut.channels, workload);
        const auto &h = res.stats.totalLatency;
        loaded.addRow({nut.label, Table::num(h.mean(), 1),
                       Table::num(h.percentile(50)),
                       Table::num(h.percentile(99)),
                       Table::num(h.max())});
    }
    std::cout << "\n";
    loaded.print(std::cout);
    return 0;
}
