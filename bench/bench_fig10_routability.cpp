/**
 * @file
 * Fig 10 reproduction: peak feasible NoC datawidth and achievable
 * frequency across system sizes and express configurations. NA cells
 * did not fit the device (wiring or logic), matching the paper's
 * black cells.
 */

#include <iostream>

#include "bench_util.hpp"
#include "fpga/routability.hpp"
#include "noc/config.hpp"

using namespace fasttrack;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner(
        "Fig 10: peak frequency (MHz) of NoCs by datawidth; NA = does "
        "not fit",
        "4x4 D=2 supports 512b (a full x86 cacheline per packet); "
        "wiring capacity shrinks with N and with D/R+1 tracks");

    AreaModel area;
    RoutabilityModel routability(area);

    struct Column
    {
        std::uint32_t n;
        std::uint32_t d; ///< 0 = Hoplite
    };
    const Column cols[] = {{4, 0}, {4, 1}, {4, 2}, {8, 0}, {8, 1},
                           {8, 2}, {8, 4}, {16, 1}, {16, 2}};

    Table table("rows: datawidth; columns: <PEs, D> (D=0 is Hoplite)");
    std::vector<std::string> header{"width"};
    for (const Column &c : cols) {
        header.push_back("<" + std::to_string(c.n * c.n) + "," +
                         std::to_string(c.d) + ">");
    }
    table.setHeader(header);

    for (std::uint32_t w : RoutabilityModel::datawidthSweep()) {
        std::vector<std::string> row{std::to_string(w)};
        for (const Column &c : cols) {
            const NocConfig cfg = c.d == 0
                ? NocConfig::hoplite(c.n)
                : NocConfig::fastTrack(c.n, c.d, 1);
            const MappingResult res = routability.map(cfg.toSpec(w));
            row.push_back(res.feasible
                              ? Table::num(res.frequencyMhz, 0)
                              : Table::na());
        }
        table.addRow(row);
    }
    table.print(std::cout);

    for (const Column &c : {Column{4, 2}, Column{8, 2}, Column{16, 2}}) {
        const NocConfig cfg = NocConfig::fastTrack(c.n, c.d, 1);
        const auto peak = routability.peakDatawidth(cfg.toSpec(8));
        std::cout << "\npeak feasible width for FT(" << c.n * c.n
                  << ",2,1): "
                  << (peak ? std::to_string(*peak) + "b" : "none");
    }
    std::cout << "\n";
    return 0;
}
