/**
 * @file
 * Datawidth tradeoff study (Section VI-B): applications moving 512b
 * cachelines must serialize them on narrow NoCs, but narrow NoCs
 * route wider systems and clock faster. Sweeps the datawidth for an
 * SpMV workload with 512b payloads on an 8x8 FT(64,2,1) and reports
 * the wall-clock optimum, with infeasible widths marked NA.
 */

#include <iostream>

#include "bench_util.hpp"
#include "fpga/routability.hpp"
#include "sim/simulation.hpp"
#include "traffic/segmentation.hpp"
#include "workloads/spmv.hpp"

using namespace fasttrack;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner(
        "Datawidth study: serializing 512b transfers on narrower "
        "NoCs (8x8, SpMV workload)",
        "wider datapaths cut fragment counts but clock lower and stop "
        "fitting; the optimum sits at the widest routable width");

    AreaModel area;
    RoutabilityModel routability(area);

    MatrixParams params;
    params.name = "cacheline";
    params.rows = 6000;
    params.avgNnzPerRow = 6.0;
    params.localFraction = 0.4;
    const SparseMatrix matrix = generateMatrix(params);
    const Trace message_trace = spmvTrace(matrix, 8);
    constexpr std::uint32_t kMessageBits = 512;

    Table table("one SpMV sweep moving 512b values");
    table.setHeader({"width(b)", "frags/msg", "packets", "cycles",
                     "MHz", "time(us)", "fits"});

    for (std::uint32_t width : {32u, 64u, 128u, 256u, 512u}) {
        const NocConfig cfg = NocConfig::fastTrack(8, 2, 1);
        const MappingResult fit = routability.map(cfg.toSpec(width));
        const Trace packet_trace =
            segmentTrace(message_trace, kMessageBits, width);
        const TraceResult res = runTrace(cfg, 1, packet_trace);
        const double mhz = fit.feasible
            ? fit.frequencyMhz
            : area.nocCost(cfg.toSpec(width)).frequencyMhz;
        table.addRow(
            {Table::num(static_cast<std::uint64_t>(width)),
             Table::num(static_cast<std::uint64_t>(
                 fragmentsPerMessage(kMessageBits, width))),
             Table::num(static_cast<std::uint64_t>(
                 packet_trace.messages.size())),
             Table::num(res.completion), Table::num(mhz, 0),
             fit.feasible ? Table::num(
                 static_cast<double>(res.completion) / mhz, 1)
                          : Table::na(),
             fit.feasible ? "yes" : "NO"});
    }
    table.print(std::cout);

    std::cout << "\nNarrow widths multiply the packet count faster "
                 "than they raise the clock; beyond the routability "
                 "limit (Fig 10) wide datapaths simply do not map.\n";
    return 0;
}
