/**
 * @file
 * Fig 6 reproduction: frequency of a pipelined LUT-FF chain with a
 * physical express bypass wire skipping 0-8 stages. Unlike Fig 4, the
 * bypass pays the fabric entry penalty once, so frequency degrades
 * gracefully (linearly in span) instead of collapsing per hop.
 */

#include <iostream>

#include "bench_util.hpp"
#include "fpga/wire_model.hpp"

using namespace fasttrack;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner(
        "Fig 6: physical express links - frequency vs distance x "
        "bypassed hops",
        "graceful linear degradation with span; 32-64 SLICE bypasses "
        "keep multi-hundred-MHz operation where Fig 4 floors at "
        "~200 MHz");

    WireModel wires;
    const std::uint32_t distances[] = {2, 4, 8, 16, 32, 64, 128, 256};
    const std::uint32_t hops[] = {0, 1, 2, 3, 4, 5, 6, 7, 8};

    Table table("frequency (MHz) with express bypass");
    std::vector<std::string> header{"hops\\dist"};
    for (auto d : distances)
        header.push_back(std::to_string(d));
    table.setHeader(header);

    for (auto h : hops) {
        std::vector<std::string> row{std::to_string(h)};
        for (auto d : distances) {
            const double mhz = wires.physicalExpressMhz(d, h);
            std::string cell = Table::num(mhz, 0);
            if (mhz > wires.device().clockCeilingMhz)
                cell += "*";
            row.push_back(cell);
        }
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\nmax single-cycle express span at 250 MHz: "
              << wires.maxExpressSpan(250.0)
              << " SLICEs; at 400 MHz: " << wires.maxExpressSpan(400.0)
              << " SLICEs (paper: 32-64 SLICE hops remain fast)\n";
    return 0;
}
