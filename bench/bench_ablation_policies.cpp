/**
 * @file
 * Ablation (beyond the paper's figures, supporting its Section IV
 * design choices): how much each FastTrack routing-policy feature is
 * worth on RANDOM traffic -- short->express upgrades (Fig 8), express
 * turns (W_EX->S_EX), and the inject-only FTlite variant.
 */

#include <iostream>

#include "bench_util.hpp"
#include "sim/experiment.hpp"

using namespace fasttrack;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner(
        "Ablation: FastTrack routing-policy features, 64 PEs, RANDOM "
        "@100%",
        "upgrades are the biggest single win; inject-only trades "
        "throughput for the cheapest router");

    struct Variant
    {
        const char *label;
        NocConfig cfg;
    };
    std::vector<Variant> variants;

    NocConfig full = NocConfig::fastTrack(8, 2, 1);
    variants.push_back({"FT full (upgrades + express turns)", full});

    NocConfig no_turn = full;
    no_turn.allowExpressTurn = false;
    variants.push_back({"FT full, no express turns", no_turn});

    NocConfig no_upgrade = full;
    no_upgrade.allowUpgrade = false;
    variants.push_back({"FT full, no lane upgrades", no_upgrade});

    NocConfig inject = NocConfig::fastTrack(8, 2, 1,
                                            NocVariant::ftInject);
    variants.push_back({"FTlite inject-only", inject});

    variants.push_back({"Hoplite baseline", NocConfig::hoplite(8)});

    Table table("policy ablation");
    table.setHeader({"variant", "rate(pkt/cyc/PE)", "avg-lat",
                     "worst-lat", "express-hop %", "deflections"});

    for (const Variant &v : variants) {
        SyntheticWorkload workload;
        workload.pattern = TrafficPattern::random;
        workload.injectionRate = 1.0;
        const SynthResult res = runSynthetic(v.cfg, 1, workload);
        const auto &s = res.stats;
        const double hops = static_cast<double>(
            s.shortHopTraversals + s.expressHopTraversals);
        table.addRow({v.label, Table::num(res.sustainedRate(), 4),
                      Table::num(res.avgLatency(), 1),
                      Table::num(res.worstLatency()),
                      Table::num(hops ? 100.0 *
                                            static_cast<double>(
                                                s.expressHopTraversals) /
                                            hops
                                      : 0.0, 1),
                      Table::num(s.totalDeflections())});
    }
    table.print(std::cout);
    return 0;
}
