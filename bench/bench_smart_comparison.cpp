/**
 * @file
 * Virtual vs physical express links, end to end (Sections II-A1 and
 * III): an idealized SMART Hoplite wins on *cycles* as HPC_max grows,
 * but each bypassed router still sits combinationally in the clock
 * path on an FPGA (Fig 4), so its packets/ns collapse - while
 * FastTrack's physical express wires keep the clock high. This bench
 * quantifies the paper's core motivation.
 */

#include <iostream>

#include "bench_util.hpp"
#include "fpga/area_model.hpp"
#include "fpga/wire_model.hpp"
#include "noc/smart.hpp"
#include "sim/simulation.hpp"

using namespace fasttrack;

namespace {

SynthResult
runOn(NocDevice &noc)
{
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 1.0;
    workload.packetsPerPe = 512;
    return runSim({.device = &noc, .workload = &workload}).synth;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner(
        "SMART virtual bypass vs FastTrack physical express, 8x8 "
        "RANDOM @100%",
        "SMART matches/beats FastTrack in cycles but its clock "
        "collapses with HPC_max on an FPGA; FastTrack wins packets/ns");

    WireModel wires;
    AreaModel area;
    const std::uint32_t n = 8;
    const double tile =
        static_cast<double>(wires.device().sliceSpan) / n;

    Table table("cycles are FPGA-agnostic; MHz and Mpkts/s are "
                "Virtex-7 projections");
    table.setHeader({"NoC", "rate(pkt/cyc/PE)", "avg-lat(cyc)", "MHz",
                     "Mpkts/s"});

    // Baseline Hoplite and FastTrack from the standard models.
    for (const NocConfig &cfg :
         {NocConfig::hoplite(n), NocConfig::fastTrack(n, 2, 1)}) {
        auto noc = makeNoc(cfg, 1);
        const SynthResult res = runOn(*noc);
        const double mhz = area.nocCost(cfg.toSpec(256)).frequencyMhz;
        table.addRow({cfg.describe(),
                      Table::num(res.sustainedRate(), 4),
                      Table::num(res.avgLatency(), 1),
                      Table::num(mhz, 0),
                      Table::num(res.sustainedRate() * n * n * mhz,
                                 1)});
    }

    // SMART at increasing bypass depths: the clock is set by a
    // straight path of HPC_max link segments through HPC_max - 1
    // combinational router traversals (Fig 4 experiment).
    for (std::uint32_t hpc : {2u, 4u, 8u}) {
        SmartNetwork noc(n, hpc);
        const SynthResult res = runOn(noc);
        const double span = tile * hpc;
        const double mhz = std::min(
            wires.virtualExpressMhz(
                static_cast<std::uint32_t>(span), hpc - 1),
            area.nocCost(NocConfig::hoplite(n).toSpec(256))
                .frequencyMhz);
        table.addRow({"SMART HPC=" + std::to_string(hpc),
                      Table::num(res.sustainedRate(), 4),
                      Table::num(res.avgLatency(), 1),
                      Table::num(mhz, 0),
                      Table::num(res.sustainedRate() * n * n * mhz,
                                 1)});
    }
    table.print(std::cout);

    std::cout << "\nOn an ASIC the SMART rows would keep their "
                 "single-hop clock; the FPGA's fabric exit/entry "
                 "penalty (Fig 4) is what motivates FastTrack's "
                 "physical express wires.\n";
    return 0;
}
