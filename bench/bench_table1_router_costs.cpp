/**
 * @file
 * Table I reproduction: FPGA implementation cost of 32b NoC routers.
 * Prior designs are published reference values; the Hoplite and
 * FastTrack rows come from our calibrated area model.
 */

#include <iostream>

#include "bench_util.hpp"
#include "fpga/area_model.hpp"
#include "fpga/reference_data.hpp"

using namespace fasttrack;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner(
        "Table I: FPGA implementations of 32b NoC routers",
        "Hoplite ~78 LUTs; FastTrack 191-290 LUTs, ~2 ns; both orders "
        "of magnitude below buffered routers");

    AreaModel area;
    Table table("32b router cost (LUTs / FFs / clock period)");
    table.setHeader({"Router", "Device", "LUTs", "FFs", "Clk(ns)",
                     "source"});

    for (const RouterReference &ref : priorRouters()) {
        table.addRow({ref.name, ref.device, Table::num(
                          static_cast<std::uint64_t>(ref.luts)),
                      Table::num(static_cast<std::uint64_t>(ref.ffs)),
                      Table::num(ref.periodNs, 1), "published"});
    }

    const RouterReference hop = hopliteReference();
    table.addRow({hop.name, hop.device,
                  Table::num(static_cast<std::uint64_t>(hop.luts)), "-",
                  Table::num(hop.periodNs, 1), "published"});

    const RouterCost hop_model =
        area.routerCost(RouterArch::hoplite, 32);
    table.addRow({"Hoplite (model)", "Virtex-7 485T",
                  Table::num(static_cast<std::uint64_t>(hop_model.luts)),
                  Table::num(static_cast<std::uint64_t>(hop_model.ffs)),
                  Table::num(1000.0 / area.frequencyMhz(
                                 NocSpec{8, 32, 0, 1, false, 1}), 1),
                  "this model"});

    for (auto [arch, label] :
         {std::pair{RouterArch::ftInject, "FastTrack FTlite (model)"},
          std::pair{RouterArch::ftFull, "FastTrack Full (model)"}}) {
        const RouterCost rc = area.routerCost(arch, 32);
        table.addRow({label, "Virtex-7 485T",
                      Table::num(static_cast<std::uint64_t>(rc.luts)),
                      Table::num(static_cast<std::uint64_t>(rc.ffs)),
                      Table::num(1000.0 / area.frequencyMhz(
                                     NocSpec{8, 32, 2, 1, false, 1}), 1),
                      "this model"});
    }

    const FastTrackReference ft = fastTrackReference();
    std::cout << "paper FastTrack anchor: " << ft.lutsLow << "-"
              << ft.lutsHigh << " LUTs, " << ft.ffs << " FFs, "
              << ft.periodNs << " ns\n\n";
    table.print(std::cout);
    return 0;
}
