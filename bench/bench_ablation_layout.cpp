/**
 * @file
 * Layout ablation (Section V: "we adopt a folded layout to balance
 * wire lengths"): the linear ring placement leaves an N-tile
 * wraparound wire that caps the clock; folding bounds every hop at
 * two tiles. This bench quantifies the choice the paper makes in one
 * sentence.
 */

#include <iostream>

#include "bench_util.hpp"
#include "fpga/layout.hpp"
#include "sim/experiment.hpp"

using namespace fasttrack;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner(
        "Ablation: folded vs linear torus layout",
        "the folded layout's two-tile hop bound keeps the wraparound "
        "off the critical path; linear placement loses most of the "
        "clock at 8x8 and above");

    LayoutModel layout;
    AreaModel area;

    Table table("clock cap from the longest wire, and resulting "
                "bandwidth at saturation (RANDOM)");
    table.setHeader({"NoC", "layout", "max wire (SLICEs)",
                     "clock cap (MHz)", "Mpkts/s"});

    for (std::uint32_t n : {4u, 8u, 16u}) {
        for (bool ft : {false, true}) {
            const NocConfig cfg =
                ft ? NocConfig::fastTrack(n, 2, 1) : NocConfig::hoplite(n);
            const NocSpec spec = cfg.toSpec(256);
            const SynthResult res = saturationRun(
                {cfg.describe(), cfg, 1}, TrafficPattern::random, 256);
            for (TorusLayout l :
                 {TorusLayout::folded, TorusLayout::linear}) {
                double span = layout.maxShortSpan(n, l);
                if (ft) {
                    span = std::max(span,
                                    layout.maxExpressSpan(n, 2, l));
                }
                const double cap = std::min(
                    layout.frequencyCapMhz(spec, l),
                    area.nocCost(spec).frequencyMhz);
                table.addRow({cfg.describe(), toString(l),
                              Table::num(span, 0),
                              Table::num(cap, 0),
                              Table::num(res.sustainedRate() *
                                             cfg.pes() * cap, 1)});
            }
        }
    }
    table.print(std::cout);
    return 0;
}
