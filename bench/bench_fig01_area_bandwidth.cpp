/**
 * @file
 * Fig 1 reproduction: area-bandwidth tradeoff of FPGA NoC routers.
 * Cost axis: max(LUTs, FFs) per switch at 32b. Bandwidth axis: peak
 * switch bandwidth in packets/ns = (packets/cycle capability) x clock.
 * Prior designs use published numbers; Hoplite and FastTrack peak
 * rates are *measured* from the simulator at 100% RANDOM injection.
 */

#include <iostream>

#include "bench_util.hpp"
#include "fpga/area_model.hpp"
#include "fpga/reference_data.hpp"
#include "noc/buffered.hpp"
#include "noc/vc_torus.hpp"
#include "sim/experiment.hpp"

using namespace fasttrack;

namespace {

/** Peak per-switch packets/cycle measured at saturation: sustained
 *  delivery rate plus through-traffic, i.e. link traversals per
 *  router-cycle. */
double
measuredSwitchRate(const NocConfig &cfg)
{
    const SynthResult res =
        saturationRun({cfg.describe(), cfg, 1}, TrafficPattern::random,
                      512);
    const double traversals =
        static_cast<double>(res.stats.shortHopTraversals +
                            res.stats.expressHopTraversals);
    return traversals /
           (static_cast<double>(res.cycles) * cfg.pes());
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner(
        "Fig 1: area-bandwidth tradeoffs of NoC routers on FPGAs",
        "Hoplite/FastTrack sit far left (tiny switches); FastTrack "
        "raises bandwidth at a fraction of buffered-router cost");

    AreaModel area;
    Table table("cost per switch vs peak switch bandwidth");
    table.setHeader({"Design", "cost=max(LUT,FF)", "clock(MHz)",
                     "pkts/cycle", "peak BW (pkts/ns)"});

    for (const RouterReference &ref : priorRouters()) {
        const double mhz = 1000.0 / ref.periodNs;
        const double bw = ref.packetsPerCycle * mhz / 1000.0;
        table.addRow({ref.name,
                      Table::num(static_cast<std::uint64_t>(
                          std::max(ref.luts, ref.ffs))),
                      Table::num(mhz, 0),
                      Table::num(ref.packetsPerCycle, 1),
                      Table::num(bw, 2)});
    }

    struct Ours
    {
        const char *label;
        NocConfig cfg;
    };
    const Ours ours[] = {
        {"Hoplite (sim)", NocConfig::hoplite(8)},
        {"FastTrack FT(64,2,1) (sim)", NocConfig::fastTrack(8, 2, 1)},
        {"FastTrack FT(64,2,2) (sim)", NocConfig::fastTrack(8, 2, 2)},
    };
    for (const Ours &o : ours) {
        const NocSpec spec = o.cfg.toSpec(32);
        const NocCost cost = area.nocCost(spec);
        const double rate = measuredSwitchRate(o.cfg);
        const double bw = rate * cost.frequencyMhz / 1000.0;
        table.addRow({o.label, Table::num(cost.costPerSwitch, 0),
                      Table::num(cost.frequencyMhz, 0),
                      Table::num(rate, 2), Table::num(bw, 2)});
    }

    // Buffered baseline: *measured* switch rate from our CONNECT-class
    // simulator, costed with CONNECT's published LUTs and clock.
    {
        BufferedNetwork noc(8, 16);
        SyntheticWorkload workload;
        workload.pattern = TrafficPattern::random;
        workload.injectionRate = 1.0;
        workload.packetsPerPe = 512;
        const SynthResult res =
            runSim({.device = &noc, .workload = &workload}).synth;
        const double rate =
            static_cast<double>(res.stats.shortHopTraversals) /
            (static_cast<double>(res.cycles) * 64);
        const RouterReference connect = priorRouters()[2];
        const double mhz = 1000.0 / connect.periodNs;
        table.addRow({"CONNECT-class buffered (sim)",
                      Table::num(static_cast<std::uint64_t>(
                          std::max(connect.luts, connect.ffs))),
                      Table::num(mhz, 0), Table::num(rate, 2),
                      Table::num(rate * mhz / 1000.0, 2)});
    }

    // High-performance ASIC-style baseline: 4-VC torus measured with
    // our simulator, costed with OpenSMART's published LUTs and clock.
    {
        VcTorusNetwork noc(8, 4, 4);
        SyntheticWorkload workload;
        workload.pattern = TrafficPattern::random;
        workload.injectionRate = 1.0;
        workload.packetsPerPe = 512;
        const SynthResult res =
            runSim({.device = &noc, .workload = &workload}).synth;
        const double rate =
            static_cast<double>(res.stats.shortHopTraversals) /
            (static_cast<double>(res.cycles) * 64);
        const RouterReference osmart = priorRouters()[0];
        const double mhz = 1000.0 / osmart.periodNs;
        table.addRow({"OpenSMART-class 4VC torus (sim)",
                      Table::num(static_cast<std::uint64_t>(
                          std::max(osmart.luts, osmart.ffs))),
                      Table::num(mhz, 0), Table::num(rate, 2),
                      Table::num(rate * mhz / 1000.0, 2)});
    }
    table.print(std::cout);
    return 0;
}
