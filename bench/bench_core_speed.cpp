/**
 * @file
 * google-benchmark microbenchmarks of the simulator core itself
 * (not a paper artifact): router-evaluation throughput and end-to-end
 * simulated cycles per second for representative configurations.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>

#include "noc/batched_engine.hpp"
#include "noc/network.hpp"
#include "sim/batch_runner.hpp"
#include "sim/simulation.hpp"
#include "sim/telemetry_session.hpp"
#include "traffic/batched_injector.hpp"
#include "traffic/trace_replay.hpp"
#include "workloads/dataflow.hpp"

using namespace fasttrack;

namespace {

void
BM_NetworkStep(benchmark::State &state)
{
    const auto n = static_cast<std::uint32_t>(state.range(0));
    const bool ft = state.range(1) != 0;
    const NocConfig cfg =
        ft ? NocConfig::fastTrack(n, 2, 1) : NocConfig::hoplite(n);
    Network noc(cfg);
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 1.0;
    workload.packetsPerPe = 0xffffffffu; // endless generation
    SyntheticInjector injector(noc, workload);

    for (auto _ : state) {
        injector.tick();
        noc.step();
    }
    state.SetItemsProcessed(state.iterations() * cfg.pes());
    state.counters["routers"] = cfg.pes();
}

/**
 * The batched lockstep engine stepping K replicas of the same
 * geometry from one thread, driven by the lane-wise injector — the
 * exact configuration the sweep layer dispatches
 * (sim/batch_runner.hpp). Items processed count router-cycles across
 * ALL lanes, so items/sec divided by BM_NetworkStep's items/sec is
 * the per-replica speedup the ISSUE's >=2x criterion refers to
 * (scripts/bench_record.py records the ratio).
 */
void
BM_BatchedStep(benchmark::State &state)
{
    const auto n = static_cast<std::uint32_t>(state.range(0));
    const bool ft = state.range(1) != 0;
    const NocConfig cfg =
        ft ? NocConfig::fastTrack(n, 2, 1) : NocConfig::hoplite(n);
    const std::uint32_t lanes = defaultBatchWidth();
    BatchedEngine noc(cfg, lanes);
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 1.0;
    workload.packetsPerPe = 0xffffffffu; // endless generation
    std::vector<SyntheticWorkload> perLane(lanes, workload);
    for (std::uint32_t lane = 0; lane < lanes; ++lane)
        perLane[lane].seed = 1 + lane; // decorrelate the lanes
    BatchedSyntheticInjector injector(noc, perLane);

    for (auto _ : state) {
        injector.tick();
        noc.step();
    }
    state.SetItemsProcessed(state.iterations() * cfg.pes() * lanes);
    state.counters["routers"] = cfg.pes();
    state.counters["replicas"] = lanes;
}

/**
 * Same stepping loop with a journey tracer attached: exercises the
 * tracer-enabled stepImpl instantiation, whose per-event std::function
 * cost the devirtualized no-tracer path avoids entirely.
 */
void
BM_NetworkStepTraced(benchmark::State &state)
{
    const auto n = static_cast<std::uint32_t>(state.range(0));
    Network noc(NocConfig::fastTrack(n, 2, 1));
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 1.0;
    workload.packetsPerPe = 0xffffffffu; // endless generation
    SyntheticInjector injector(noc, workload);

    std::uint64_t events = 0;
    noc.setJourneyTracer(
        [&events](const Packet &, NodeId, OutPort, Cycle) { ++events; });

    for (auto _ : state) {
        injector.tick();
        noc.step();
    }
    benchmark::DoNotOptimize(events);
    state.SetItemsProcessed(state.iterations() * noc.config().pes());
    state.counters["routers"] = noc.config().pes();
}

/**
 * Same stepping loop with an installed telemetry sink: exercises the
 * HasTelem stepImpl instantiation (ring pushes + counter bumps per
 * event). Deliberately *not* named under the BM_NetworkStep prefix:
 * scripts/bench_record.py records that prefix as the no-hook perf
 * baseline, which this flavor must not pollute. Compare against
 * BM_NetworkStep/16/1 to measure telemetry overhead; the no-sink
 * number itself must stay put (docs/observability.md).
 */
void
BM_TelemetryStep(benchmark::State &state)
{
    const auto n = static_cast<std::uint32_t>(state.range(0));
    telemetry::TelemetryConfig tcfg; // in-memory, no artifact export
    const bool trace_events = state.range(1) != 0;
    tcfg.traceEvents = trace_events;
    TelemetrySession session(std::move(tcfg));

    Network noc(NocConfig::fastTrack(n, 2, 1));
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 1.0;
    workload.packetsPerPe = 0xffffffffu; // endless generation
    SyntheticInjector injector(noc, workload);

    for (auto _ : state) {
        injector.tick();
        noc.step();
    }
    state.SetItemsProcessed(state.iterations() * noc.config().pes());
    state.counters["routers"] = noc.config().pes();
    state.counters["dropped"] = static_cast<double>(
        session.sink().totalDropped());
}

void
BM_TraceReplay(benchmark::State &state)
{
    LuDagParams params{"bench", 4096, 12.0, 1.8, 3, 77};
    const DataflowDag dag = sparseLuDag(params);
    const Trace trace = dataflowTrace(dag, 8);
    for (auto _ : state) {
        auto noc = makeNoc(NocConfig::fastTrack(8, 2, 1), 1);
        TraceReplayer replayer(*noc, trace);
        benchmark::DoNotOptimize(replayer.run(10'000'000));
    }
    state.SetItemsProcessed(state.iterations() * trace.messages.size());
}

} // namespace

BENCHMARK(BM_NetworkStep)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({32, 1});
// Lane count comes from --batch (default defaultBatchWidth()); the
// {n, ft} grid mirrors the BM_NetworkStep points the per-replica
// speedup is measured against.
BENCHMARK(BM_BatchedStep)->Args({8, 1})->Args({16, 1})->Args({16, 0});
BENCHMARK(BM_NetworkStepTraced)->Arg(16);
// {n, traceEvents}: counters-only vs full event tracing.
BENCHMARK(BM_TelemetryStep)->Args({16, 0})->Args({16, 1});
BENCHMARK(BM_TraceReplay)->Unit(benchmark::kMillisecond);

/** Custom main: peel the harness-shared --batch K off the argv
 *  before google-benchmark parses it (it rejects flags it does not
 *  own), mirroring bench_util::parseArgs validation. */
int
main(int argc, char **argv)
{
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--batch") == 0) {
            char *end = nullptr;
            const long k =
                i + 1 < argc ? std::strtol(argv[i + 1], &end, 10) : 0;
            if (i + 1 >= argc || end == argv[i + 1] || *end != '\0' ||
                k < 1 ||
                k > static_cast<long>(BatchedEngine::kMaxLanes)) {
                std::cerr << argv[0] << ": --batch needs an integer"
                          << " in 1.." << BatchedEngine::kMaxLanes
                          << "\n";
                return 1;
            }
            if ((k & (k - 1)) != 0) {
                std::cerr << argv[0] << ": warning: --batch " << k
                          << " is not a power of two; batched rows"
                          << " will straddle cache lines\n";
            }
            setDefaultBatchWidth(static_cast<std::uint32_t>(k));
            ++i;
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
