/**
 * @file
 * Table II reproduction: resource usage, frequency and power of an
 * 8x8 256b NoC on the Virtex-7 485T (Hoplite vs FT(64,2,1) vs
 * FT(64,2,2)), from the calibrated area and power models.
 */

#include <iostream>

#include "bench_util.hpp"
#include "fpga/power_model.hpp"
#include "noc/config.hpp"

using namespace fasttrack;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner(
        "Table II: 8x8 256b NoC resources on Virtex-7 485T",
        "paper: Hoplite 34K/83K LUT/FF 344 MHz 9.8 W; FT(64,2,1) "
        "104K/150K 320 MHz 25.1 W; FT(64,2,2) 69K/117K 323 MHz 19.9 W");

    AreaModel area;
    PowerModel power(area);

    struct Row
    {
        const char *label;
        NocConfig cfg;
        double paperLutsK, paperFfsK, paperMhz, paperW;
    };
    const Row rows[] = {
        {"Hoplite", NocConfig::hoplite(8), 34, 83, 344, 9.8},
        {"FT(64,2,1)", NocConfig::fastTrack(8, 2, 1), 104, 150, 320,
         25.1},
        {"FT(64,2,2)", NocConfig::fastTrack(8, 2, 2), 69, 117, 323,
         19.9},
    };

    Table table("model vs paper");
    table.setHeader({"Config", "LUTs", "FFs", "MHz", "Power(W)",
                     "paper LUTs", "paper FFs", "paper MHz",
                     "paper W"});
    for (const Row &row : rows) {
        const NocSpec spec = row.cfg.toSpec(256);
        const NocCost cost = area.nocCost(spec);
        table.addRow({row.label, Table::num(cost.luts),
                      Table::num(cost.ffs),
                      Table::num(cost.frequencyMhz, 0),
                      Table::num(power.dynamicPowerW(spec), 1),
                      Table::num(row.paperLutsK, 0) + "K",
                      Table::num(row.paperFfsK, 0) + "K",
                      Table::num(row.paperMhz, 0),
                      Table::num(row.paperW, 1)});
    }
    table.print(std::cout);

    const double hop_luts =
        static_cast<double>(area.nocCost(rows[0].cfg.toSpec(256)).luts);
    std::cout << "\narea ratios over Hoplite: FT(64,2,1) "
              << Table::num(static_cast<double>(
                                area.nocCost(rows[1].cfg.toSpec(256))
                                    .luts) /
                                hop_luts, 2)
              << "x, FT(64,2,2) "
              << Table::num(static_cast<double>(
                                area.nocCost(rows[2].cfg.toSpec(256))
                                    .luts) /
                                hop_luts, 2)
              << "x (paper: 2.6x / 1.7x)\n";
    return 0;
}
