/**
 * @file
 * Fig 17 reproduction: sustained rate of RANDOM traffic at 50%
 * injection as the express-link length D varies, for fully populated
 * (R=1) and fully depopulated (R=D) FastTrack NoCs across system
 * sizes.
 */

#include <iostream>

#include "bench_util.hpp"
#include "sim/experiment.hpp"

using namespace fasttrack;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner(
        "Fig 17: sustained rate vs express length D (RANDOM @50%)",
        "gains peak at D=2-3 for an 8x8 NoC and drop at D=4 (too few "
        "packets travel far enough); depopulation (R=D) trades "
        "throughput for cost but still beats D=0");

    const std::uint32_t sides[] = {4, 8, 16};

    for (bool depopulated : {false, true}) {
        Table table(depopulated ? "R=D (fully depopulated)"
                                : "R=1 (fully populated)");
        std::vector<std::string> header{"D"};
        for (std::uint32_t n : sides)
            header.push_back(std::to_string(n * n) + "-PE");
        table.setHeader(header);

        const std::uint32_t max_d = 16 / 2;
        for (std::uint32_t d = 0; d <= max_d; ++d) {
            std::vector<std::string> row{std::to_string(d)};
            for (std::uint32_t n : sides) {
                // NA: D too long for the ring, or a depopulated braid
                // that cannot close across the wraparound (R must
                // divide N).
                if (d > n / 2 || (depopulated && d > 1 && n % d != 0)) {
                    row.push_back(Table::na());
                    continue;
                }
                const NocConfig cfg = d == 0
                    ? NocConfig::hoplite(n)
                    : NocConfig::fastTrack(n, d, depopulated ? d : 1);
                SyntheticWorkload workload;
                workload.pattern = TrafficPattern::random;
                workload.injectionRate = 0.5;
                workload.packetsPerPe = n >= 16 ? 256 : 1024;
                const SynthResult res =
                    runSynthetic(cfg, 1, workload);
                row.push_back(Table::num(res.sustainedRate(), 4));
            }
            table.addRow(row);
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
