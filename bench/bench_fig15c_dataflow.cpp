/**
 * @file
 * Fig 15c reproduction: token LU-factorization dataflow traces.
 * Latency-sensitive: packets inject along dependency chains, so the
 * NoC's per-message latency, not its bandwidth, bounds completion.
 */

#include <iostream>

#include "bench_trace_util.hpp"
#include "bench_util.hpp"
#include "workloads/dataflow.hpp"

using namespace fasttrack;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner(
        "Fig 15c: sparse LU token dataflow speedups (best FastTrack "
        "vs Hoplite)",
        "modest (~1.4x peak) and concentrated at 256 PEs; small PE "
        "counts serialize inside the PEs, not the NoC");

    const std::uint32_t sides[] = {4, 8, 16}; // 16..256 PEs

    Table table("speedup by LU dataflow graph and PE count");
    std::vector<std::string> header{"circuit"};
    for (std::uint32_t n : sides)
        header.push_back(std::to_string(n * n) + "-PE");
    header.push_back("best cfg @256");
    table.setHeader(header);

    for (const LuDagParams &params : luCatalog()) {
        const DataflowDag dag = sparseLuDag(params);
        std::vector<std::string> row{params.name};
        std::string best;
        for (std::uint32_t n : sides) {
            const Trace trace = dataflowTrace(dag, n);
            const bench::TraceSpeedup s = bench::traceSpeedup(trace);
            row.push_back(Table::num(s.speedup(), 2));
            best = s.bestConfig;
        }
        row.push_back(best);
        table.addRow(row);
    }
    table.print(std::cout);
    return 0;
}
