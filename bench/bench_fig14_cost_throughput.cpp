/**
 * @file
 * Fig 14 reproduction: cost-aware comparison at 100% RANDOM injection
 * on an 8x8 NoC. (a) LUT area vs throughput in million packets/s
 * (sustained rate x PEs x clock); (b) ring wire count vs throughput.
 */

#include <iostream>

#include "bench_util.hpp"
#include "fpga/area_model.hpp"
#include "sim/experiment.hpp"

using namespace fasttrack;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner(
        "Fig 14: logic-area and wire-count vs throughput, 8x8 RANDOM "
        "@100% injection",
        "FT designs deliver 2.5-3x Hoplite, ~1.8x Hoplite-2x, ~1.2x "
        "Hoplite-3x, with fewer LUTs than the multi-channel designs");

    AreaModel area;

    std::vector<NocUnderTest> lineup = isoWiringLineup(8);
    lineup.push_back({"Hoplite-2x", NocConfig::hoplite(8), 2});

    Table table("cost vs throughput (256b datapath)");
    table.setHeader({"NoC", "LUTs", "wire-count", "MHz",
                     "rate(pkt/cyc/PE)", "Mpkts/s"});

    for (const auto &nut : lineup) {
        const SynthResult res =
            saturationRun(nut, TrafficPattern::random);
        const NocCost cost =
            area.nocCost(nut.config.toSpec(256, nut.channels));
        const double mpkts = res.sustainedRate() * nut.config.pes() *
                             cost.frequencyMhz;
        table.addRow({nut.label, Table::num(cost.luts),
                      Table::num(static_cast<std::uint64_t>(
                          cost.wireCount)),
                      Table::num(cost.frequencyMhz, 0),
                      Table::num(res.sustainedRate(), 4),
                      Table::num(mpkts, 1)});
    }
    table.print(std::cout);

    std::cout << "\nnote: FT(64,2,1) and Hoplite-3x use the same 48 "
                 "ring tracks; FT(64,2,2) matches Hoplite-2x at 32.\n";
    return 0;
}
