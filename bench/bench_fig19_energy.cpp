/**
 * @file
 * Fig 19 reproduction: throughput-energy tradeoff for a 64-PE NoC
 * routing the RANDOM workload to completion. Energy = modelled
 * dynamic power at the *measured* link activity x routing time.
 */

#include <iostream>

#include "bench_util.hpp"
#include "fpga/power_model.hpp"
#include "sim/experiment.hpp"

using namespace fasttrack;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner(
        "Fig 19: throughput vs energy, 64 PEs, RANDOM @100% injection",
        "FT(64,2,1) ~1.8x Hoplite throughput at ~20% less energy; "
        "~1.2x Hoplite-3x throughput at ~15% more energy; Hoplite-2x "
        "is the energy minimum at lower throughput");

    AreaModel area;
    PowerModel power(area);

    std::vector<NocUnderTest> lineup = isoWiringLineup(8);
    lineup.push_back({"Hoplite-2x", NocConfig::hoplite(8), 2});

    Table table("throughput vs energy (256b, workload = 1K pkts/PE)");
    table.setHeader({"NoC", "Mpkts/s", "power(W)", "time(ms)",
                     "energy(mJ)", "activity"});

    for (const auto &nut : lineup) {
        const SynthResult res =
            saturationRun(nut, TrafficPattern::random);
        const NocSpec spec = nut.config.toSpec(256, nut.channels);
        const NocCost cost = area.nocCost(spec);

        // Activity measured from the simulation: fraction of
        // link-cycles actually toggling.
        auto noc = makeNoc(nut.config, nut.channels);
        const double activity = res.stats.linkActivity(
            noc->linkCount(), res.cycles);

        const double watts = power.dynamicPowerW(spec, activity);
        const double seconds =
            static_cast<double>(res.cycles) /
            (cost.frequencyMhz * 1e6);
        const double mpkts = res.sustainedRate() * nut.config.pes() *
                             cost.frequencyMhz;
        table.addRow({nut.label, Table::num(mpkts, 1),
                      Table::num(watts, 1),
                      Table::num(seconds * 1e3, 3),
                      Table::num(watts * seconds * 1e3, 3),
                      Table::num(activity, 3)});
    }
    table.print(std::cout);
    return 0;
}
