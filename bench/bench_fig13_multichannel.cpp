/**
 * @file
 * Fig 13 reproduction: iso-wiring comparison of FastTrack against
 * multi-channel replicated Hoplite for N = 16, 64 and 256 PEs under
 * RANDOM traffic. Hoplite-3x uses the same ring-track count as
 * FT(N,2,1); the question is which spends the wires better.
 */

#include <iostream>

#include "bench_util.hpp"
#include "sim/experiment.hpp"

using namespace fasttrack;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner(
        "Fig 13: multi-channel Hoplite vs FastTrack (RANDOM)",
        "FastTrack beats Hoplite-3x by 1.2-1.4x sustained rate and "
        "wins average latency, despite Hoplite-3x costing 1.5x more "
        "LUTs");

    const std::uint32_t sides[] = {4, 8, 16};
    const auto rates = injectionRateGrid();

    for (std::uint32_t n : sides) {
        const auto lineup = isoWiringLineup(n);

        std::vector<std::vector<SweepPoint>> sweeps;
        for (const auto &nut : lineup) {
            sweeps.push_back(injectionSweep(nut, TrafficPattern::random,
                                            rates,
                                            n >= 16 ? 256 : 1024));
        }

        Table rate_table(std::to_string(n * n) +
                         " PEs: sustained rate (pkt/cycle/PE)");
        Table lat_table(std::to_string(n * n) +
                        " PEs: average latency (cycles)");
        std::vector<std::string> header{"inj-rate"};
        for (const auto &nut : lineup)
            header.push_back(nut.label);
        rate_table.setHeader(header);
        lat_table.setHeader(header);

        for (std::size_t r = 0; r < rates.size(); ++r) {
            std::vector<std::string> rate_row{Table::num(rates[r], 2)};
            std::vector<std::string> lat_row{Table::num(rates[r], 2)};
            for (const auto &sweep : sweeps) {
                rate_row.push_back(
                    Table::num(sweep[r].result.sustainedRate(), 4));
                lat_row.push_back(
                    Table::num(sweep[r].result.avgLatency(), 1));
            }
            rate_table.addRow(rate_row);
            lat_table.addRow(lat_row);
        }
        rate_table.print(std::cout);
        std::cout << "\n";
        lat_table.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
