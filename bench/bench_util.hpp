/**
 * @file
 * Shared helpers for the paper-reproduction bench harnesses.
 */

#ifndef FT_BENCH_BENCH_UTIL_HPP
#define FT_BENCH_BENCH_UTIL_HPP

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "common/parallel.hpp"
#include "common/table.hpp"
#include "net/endpoint.hpp"
#include "noc/batched_engine.hpp"
#include "sched/work_stealing_pool.hpp"
#include "sim/batch_runner.hpp"
#include "sim/remote.hpp"
#include "sim/sweep_cache.hpp"
#include "telemetry/metrics.hpp"

namespace fasttrack::bench {

/**
 * Worker-thread count for harnesses that fan out over parallelMap:
 * the --threads override when given, hardware concurrency otherwise.
 */
inline unsigned &
threadOverride()
{
    static unsigned threads = 0; // 0 = use hardware concurrency
    return threads;
}

inline unsigned
workerThreads()
{
    return threadOverride() ? threadOverride()
                            : std::thread::hardware_concurrency();
}

/**
 * Telemetry artifact directory from --telemetry-dir; empty (the
 * default) leaves artifact export off. Harnesses that support
 * observability attach a TelemetrySession whose config().dir is this.
 */
inline std::string &
telemetryDir()
{
    static std::string dir;
    return dir;
}

/** Metrics snapshot period in cycles from --telemetry-epoch. */
inline std::uint64_t &
telemetryEpoch()
{
    static std::uint64_t epoch = 1024;
    return epoch;
}

/** Destination of --cache-stats; empty (the default) disables the
 *  end-of-run scheduler/cache metrics dump. */
inline std::string &
cacheStatsFile()
{
    static std::string file;
    return file;
}

/** Snapshot period in cycles from --snapshot-every (0 = off). Runs
 *  that honour it write checkpoint files (docs/checkpoint.md) into a
 *  per-run subdirectory of snapshotDir(). */
inline std::uint64_t &
snapshotEvery()
{
    static std::uint64_t every = 0;
    return every;
}

/** Snapshot root directory from --snapshot-dir. */
inline std::string &
snapshotDir()
{
    static std::string dir;
    return dir;
}

/** Resume root directory from --resume; harnesses look for the
 *  latest matching snapshot under the same per-run subdirectory
 *  naming they write with. */
inline std::string &
resumeDir()
{
    static std::string dir;
    return dir;
}

/** Temporal-shard slice length from --shard-cycles (0 = off).
 *  Harnesses that honour it run their long single-point simulations
 *  via runShardedSim across the --remote fleet instead of locally
 *  (docs/distributed.md, "Temporal sharding"). */
inline std::uint64_t &
shardCycles()
{
    static std::uint64_t cycles = 0;
    return cycles;
}

/** Publish sweep-cache and pool counters into a registry and write
 *  the `metric,kind,value` summary CSV to @p os. */
inline void
writeCacheStats(std::ostream &os)
{
    telemetry::MetricsRegistry metrics;
    sweepCache().reportTo(metrics);
    sched::WorkStealingPool::global().reportTo(metrics);
    reportBatchRunStats(metrics);
    if (remoteConfigured())
        reportRemoteStats(metrics);
    metrics.writeSummary(os);
}

/** atexit hook registered by parseArgs when --cache-stats is given,
 *  so every harness gets the dump without per-main() plumbing. The
 *  hook is registered after the global pool is constructed, hence
 *  runs before the pool is torn down. */
inline void
writeCacheStatsAtExit()
{
    std::ofstream os(cacheStatsFile());
    if (!os) {
        std::cerr << "cache-stats: cannot write '" << cacheStatsFile()
                  << "'\n";
        return;
    }
    writeCacheStats(os);
}

/** Turn a lineup label like "FT(64,2,2)" into a file-name-safe
 *  artifact prefix like "FT_64_2_2". */
inline std::string
fileSafeLabel(const std::string &label)
{
    std::string out;
    out.reserve(label.size());
    bool last_sep = true;
    for (char c : label) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' || c == '.';
        if (ok) {
            out.push_back(c);
            last_sep = false;
        } else if (!last_sep) {
            out.push_back('_');
            last_sep = true;
        }
    }
    while (!out.empty() && out.back() == '_')
        out.pop_back();
    return out;
}

inline void
usage(const char *prog)
{
    std::cerr
        << "usage: " << prog
        << " [--csv] [--threads N] [--batch K] [--telemetry-dir DIR]"
           " [--telemetry-epoch N] [--result-cache DIR]"
           " [--result-cache-max-bytes N] [--cache-stats FILE]"
           " [--snapshot-every N] [--snapshot-dir DIR] [--resume DIR]"
           " [--remote HOST:PORT[,HOST:PORT...]] [--shard-cycles N]\n"
        << "  --csv                emit tables as CSV (for scripting)\n"
        << "  --threads N          cap parallel sweep workers at N\n"
        << "  --batch K            replicas per batched-engine group\n"
        << "                       (1.."
        << BatchedEngine::kMaxLanes
        << "; 1 disables batching; default "
        << defaultBatchWidth() << ")\n"
        << "  --telemetry-dir DIR  export telemetry artifacts (Chrome\n"
        << "                       traces, link heatmaps, metrics CSV)\n"
        << "                       into DIR\n"
        << "  --telemetry-epoch N  metrics snapshot period in cycles\n"
        << "                       (default 1024)\n"
        << "  --result-cache DIR   persist sweep results in DIR and\n"
        << "                       reuse them across invocations\n"
        << "  --result-cache-max-bytes N\n"
        << "                       cap the --result-cache store at N\n"
        << "                       bytes, evicting oldest entries\n"
        << "  --cache-stats FILE   write scheduler/cache counters as\n"
        << "                       CSV (metric,kind,value) at exit\n"
        << "  --snapshot-every N   checkpoint supporting runs every N\n"
        << "                       cycles (needs --snapshot-dir; see\n"
        << "                       docs/checkpoint.md)\n"
        << "  --snapshot-dir DIR   root directory snapshot files are\n"
        << "                       written under (one subdirectory per\n"
        << "                       run)\n"
        << "  --resume DIR         resume runs from the latest matching\n"
        << "                       snapshot under DIR (corrupt or\n"
        << "                       missing snapshots fall back to a\n"
        << "                       fresh run)\n"
        << "  --remote HOST:PORT[,HOST:PORT...]\n"
        << "                       fan sweep points out to ftd daemons\n"
        << "                       (unreachable workers fall back to\n"
        << "                       local execution)\n"
        << "  --shard-cycles N     run long single-point simulations as\n"
        << "                       N-cycle temporal shards across the\n"
        << "                       --remote fleet (needs --remote; see\n"
        << "                       docs/distributed.md)\n";
}

/** Parse shared harness flags: --csv switches every table to CSV
 *  output (for scripting the figure data); --threads N caps the
 *  parallelMap worker count. Unknown flags are an error (exit 2), so
 *  a typo cannot silently run the default configuration. Call first
 *  in main(). */
inline void
parseArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0) {
            Table::setCsvMode(true);
            continue;
        }
        if (std::strcmp(argv[i], "--threads") == 0) {
            char *end = nullptr;
            const long n =
                i + 1 < argc ? std::strtol(argv[i + 1], &end, 10) : 0;
            if (i + 1 >= argc || end == argv[i + 1] || *end != '\0' ||
                n < 1) {
                std::cerr << argv[0]
                          << ": --threads needs a positive integer\n";
                usage(argv[0]);
                std::exit(2);
            }
            threadOverride() = static_cast<unsigned>(n);
            ++i;
            continue;
        }
        if (std::strcmp(argv[i], "--batch") == 0) {
            char *end = nullptr;
            const long k =
                i + 1 < argc ? std::strtol(argv[i + 1], &end, 10) : 0;
            if (i + 1 >= argc || end == argv[i + 1] || *end != '\0' ||
                k < 1 ||
                k > static_cast<long>(BatchedEngine::kMaxLanes)) {
                std::cerr << argv[0] << ": --batch needs an integer"
                          << " in 1.." << BatchedEngine::kMaxLanes
                          << "\n";
                usage(argv[0]);
                std::exit(2);
            }
            if ((k & (k - 1)) != 0) {
                // Legal but usually unintended: odd widths leave the
                // replica rows straddling cache lines.
                std::cerr << argv[0] << ": warning: --batch " << k
                          << " is not a power of two; batched rows"
                          << " will straddle cache lines\n";
            }
            setDefaultBatchWidth(static_cast<std::uint32_t>(k));
            ++i;
            continue;
        }
        if (std::strcmp(argv[i], "--telemetry-dir") == 0) {
            if (i + 1 >= argc || argv[i + 1][0] == '\0') {
                std::cerr << argv[0]
                          << ": --telemetry-dir needs a directory\n";
                usage(argv[0]);
                std::exit(2);
            }
            telemetryDir() = argv[i + 1];
            ++i;
            continue;
        }
        if (std::strcmp(argv[i], "--telemetry-epoch") == 0) {
            char *end = nullptr;
            const long n =
                i + 1 < argc ? std::strtol(argv[i + 1], &end, 10) : 0;
            if (i + 1 >= argc || end == argv[i + 1] || *end != '\0' ||
                n < 1) {
                std::cerr
                    << argv[0]
                    << ": --telemetry-epoch needs a positive integer\n";
                usage(argv[0]);
                std::exit(2);
            }
            telemetryEpoch() = static_cast<std::uint64_t>(n);
            ++i;
            continue;
        }
        if (std::strcmp(argv[i], "--result-cache") == 0) {
            if (i + 1 >= argc || argv[i + 1][0] == '\0') {
                std::cerr << argv[0]
                          << ": --result-cache needs a directory\n";
                usage(argv[0]);
                std::exit(2);
            }
            sweepCache().setDir(argv[i + 1]);
            ++i;
            continue;
        }
        if (std::strcmp(argv[i], "--result-cache-max-bytes") == 0) {
            char *end = nullptr;
            const long long n =
                i + 1 < argc ? std::strtoll(argv[i + 1], &end, 10)
                             : 0;
            if (i + 1 >= argc || end == argv[i + 1] || *end != '\0' ||
                n < 1) {
                std::cerr << argv[0]
                          << ": --result-cache-max-bytes needs a"
                             " positive byte count\n";
                usage(argv[0]);
                std::exit(2);
            }
            sweepCache().setMaxDiskBytes(
                static_cast<std::uint64_t>(n));
            ++i;
            continue;
        }
        if (std::strcmp(argv[i], "--remote") == 0) {
            std::string error;
            std::vector<net::Endpoint> endpoints;
            if (i + 1 >= argc ||
                !net::parseEndpointList(argv[i + 1], endpoints,
                                        error)) {
                std::cerr << argv[0] << ": --remote: "
                          << (i + 1 >= argc
                                  ? "needs HOST:PORT[,HOST:PORT...]"
                                  : error)
                          << "\n";
                usage(argv[0]);
                std::exit(2);
            }
            RemoteConfig remote;
            remote.endpoints = std::move(endpoints);
            setRemoteConfig(std::move(remote));
            ++i;
            continue;
        }
        if (std::strcmp(argv[i], "--shard-cycles") == 0) {
            char *end = nullptr;
            const long long n =
                i + 1 < argc ? std::strtoll(argv[i + 1], &end, 10)
                             : 0;
            if (i + 1 >= argc || end == argv[i + 1] || *end != '\0' ||
                n < 1 ||
                static_cast<std::uint64_t>(n) > kMaxSliceCycles) {
                std::cerr
                    << argv[0]
                    << ": --shard-cycles needs a positive integer <= "
                    << kMaxSliceCycles << "\n";
                usage(argv[0]);
                std::exit(2);
            }
            shardCycles() = static_cast<std::uint64_t>(n);
            ++i;
            continue;
        }
        if (std::strcmp(argv[i], "--snapshot-every") == 0) {
            char *end = nullptr;
            const long long n =
                i + 1 < argc ? std::strtoll(argv[i + 1], &end, 10)
                             : 0;
            if (i + 1 >= argc || end == argv[i + 1] || *end != '\0' ||
                n < 1) {
                std::cerr
                    << argv[0]
                    << ": --snapshot-every needs a positive integer\n";
                usage(argv[0]);
                std::exit(2);
            }
            snapshotEvery() = static_cast<std::uint64_t>(n);
            ++i;
            continue;
        }
        if (std::strcmp(argv[i], "--snapshot-dir") == 0) {
            if (i + 1 >= argc || argv[i + 1][0] == '\0') {
                std::cerr << argv[0]
                          << ": --snapshot-dir needs a directory\n";
                usage(argv[0]);
                std::exit(2);
            }
            snapshotDir() = argv[i + 1];
            ++i;
            continue;
        }
        if (std::strcmp(argv[i], "--resume") == 0) {
            if (i + 1 >= argc || argv[i + 1][0] == '\0') {
                std::cerr << argv[0]
                          << ": --resume needs a directory\n";
                usage(argv[0]);
                std::exit(2);
            }
            resumeDir() = argv[i + 1];
            ++i;
            continue;
        }
        if (std::strcmp(argv[i], "--cache-stats") == 0) {
            if (i + 1 >= argc || argv[i + 1][0] == '\0') {
                std::cerr << argv[0]
                          << ": --cache-stats needs a file\n";
                usage(argv[0]);
                std::exit(2);
            }
            cacheStatsFile() = argv[i + 1];
            ++i;
            continue;
        }
        std::cerr << argv[0] << ": unknown flag '" << argv[i] << "'\n";
        usage(argv[0]);
        std::exit(2);
    }

    if (snapshotEvery() != 0 && snapshotDir().empty()) {
        std::cerr << argv[0]
                  << ": --snapshot-every needs --snapshot-dir\n";
        usage(argv[0]);
        std::exit(2);
    }
    if (shardCycles() != 0 && !remoteConfigured()) {
        std::cerr << argv[0] << ": --shard-cycles needs --remote\n";
        usage(argv[0]);
        std::exit(2);
    }

    // Route --threads into the process-wide parallelMap default
    // (sweeps pick it up without per-call plumbing), size the
    // persistent pool from it, then register the stats hook — after
    // pool construction, so the hook runs before pool teardown.
    parallel_detail::setDefaultParallelThreads(threadOverride());
    sched::ensureGlobalPool();
    if (!cacheStatsFile().empty())
        std::atexit(writeCacheStatsAtExit);
}

/** Print the standard harness banner: which paper artifact this
 *  regenerates and what shape to expect. */
inline void
banner(const std::string &artifact, const std::string &expectation)
{
    std::cout << "### " << artifact << "\n";
    if (!expectation.empty() && !Table::csvMode())
        std::cout << "# paper shape: " << expectation << "\n";
    std::cout << "\n";
}

} // namespace fasttrack::bench

#endif // FT_BENCH_BENCH_UTIL_HPP
