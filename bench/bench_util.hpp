/**
 * @file
 * Shared helpers for the paper-reproduction bench harnesses.
 */

#ifndef FT_BENCH_BENCH_UTIL_HPP
#define FT_BENCH_BENCH_UTIL_HPP

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "common/table.hpp"

namespace fasttrack::bench {

/**
 * Worker-thread count for harnesses that fan out over parallelMap:
 * the --threads override when given, hardware concurrency otherwise.
 */
inline unsigned &
threadOverride()
{
    static unsigned threads = 0; // 0 = use hardware concurrency
    return threads;
}

inline unsigned
workerThreads()
{
    return threadOverride() ? threadOverride()
                            : std::thread::hardware_concurrency();
}

inline void
usage(const char *prog)
{
    std::cerr << "usage: " << prog << " [--csv] [--threads N]\n"
              << "  --csv        emit tables as CSV (for scripting)\n"
              << "  --threads N  cap parallel sweep workers at N\n";
}

/** Parse shared harness flags: --csv switches every table to CSV
 *  output (for scripting the figure data); --threads N caps the
 *  parallelMap worker count. Unknown flags are an error (exit 2), so
 *  a typo cannot silently run the default configuration. Call first
 *  in main(). */
inline void
parseArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0) {
            Table::setCsvMode(true);
            continue;
        }
        if (std::strcmp(argv[i], "--threads") == 0) {
            char *end = nullptr;
            const long n =
                i + 1 < argc ? std::strtol(argv[i + 1], &end, 10) : 0;
            if (i + 1 >= argc || end == argv[i + 1] || *end != '\0' ||
                n < 1) {
                std::cerr << argv[0]
                          << ": --threads needs a positive integer\n";
                usage(argv[0]);
                std::exit(2);
            }
            threadOverride() = static_cast<unsigned>(n);
            ++i;
            continue;
        }
        std::cerr << argv[0] << ": unknown flag '" << argv[i] << "'\n";
        usage(argv[0]);
        std::exit(2);
    }
}

/** Print the standard harness banner: which paper artifact this
 *  regenerates and what shape to expect. */
inline void
banner(const std::string &artifact, const std::string &expectation)
{
    std::cout << "### " << artifact << "\n";
    if (!expectation.empty() && !Table::csvMode())
        std::cout << "# paper shape: " << expectation << "\n";
    std::cout << "\n";
}

} // namespace fasttrack::bench

#endif // FT_BENCH_BENCH_UTIL_HPP
