/**
 * @file
 * Shared helpers for the paper-reproduction bench harnesses.
 */

#ifndef FT_BENCH_BENCH_UTIL_HPP
#define FT_BENCH_BENCH_UTIL_HPP

#include <cstring>
#include <iostream>
#include <string>

#include "common/table.hpp"

namespace fasttrack::bench {

/** Parse shared harness flags: --csv switches every table to CSV
 *  output (for scripting the figure data). Call first in main(). */
inline void
parseArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0)
            Table::setCsvMode(true);
    }
}

/** Print the standard harness banner: which paper artifact this
 *  regenerates and what shape to expect. */
inline void
banner(const std::string &artifact, const std::string &expectation)
{
    std::cout << "### " << artifact << "\n";
    if (!expectation.empty() && !Table::csvMode())
        std::cout << "# paper shape: " << expectation << "\n";
    std::cout << "\n";
}

} // namespace fasttrack::bench

#endif // FT_BENCH_BENCH_UTIL_HPP
