/**
 * @file
 * Fig 15a reproduction: Sparse Matrix-Vector Multiplication
 * communication traces. Speedup = Hoplite completion / best-FastTrack
 * completion at identical PE counts.
 */

#include <iostream>
#include <memory>

#include "bench_trace_util.hpp"
#include "bench_util.hpp"
#include "sim/telemetry_session.hpp"
#include "workloads/spmv.hpp"

using namespace fasttrack;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner(
        "Fig 15a: SpMV trace speedups (best FastTrack vs Hoplite)",
        "up to ~2.5x; grows with PE count; predominantly-local "
        "matrices (hamm_memplus, bomhof_circuit_2) barely benefit");

    const std::uint32_t sides[] = {2, 4, 8, 16}; // 4..256 PEs

    // With --telemetry-dir the whole bench runs under one session:
    // every parallelMap worker replaying a trace gets its own Chrome
    // trace file, and each matrix shows up as a host phase span.
    std::unique_ptr<TelemetrySession> session;
    if (!bench::telemetryDir().empty()) {
        telemetry::TelemetryConfig tcfg;
        tcfg.dir = bench::telemetryDir();
        tcfg.epoch = bench::telemetryEpoch();
        tcfg.filePrefix = "fig15a_";
        session = std::make_unique<TelemetrySession>(std::move(tcfg));
    }

    Table table("speedup by matrix and PE count");
    std::vector<std::string> header{"matrix"};
    for (std::uint32_t n : sides)
        header.push_back(std::to_string(n * n) + "-PE");
    header.push_back("best cfg @256");
    table.setHeader(header);

    for (const MatrixParams &params : spmvCatalog()) {
        telemetry::PhaseTimer phase("spmv " + params.name);
        const SparseMatrix matrix = generateMatrix(params);
        std::vector<std::string> row{params.name};
        std::string best;
        for (std::uint32_t n : sides) {
            const Trace trace = spmvTrace(matrix, n);
            const bench::TraceSpeedup s = bench::traceSpeedup(trace);
            row.push_back(Table::num(s.speedup(), 2));
            best = s.bestConfig;
        }
        row.push_back(best);
        table.addRow(row);
    }
    table.print(std::cout);

    if (session) {
        std::cout << "\n# telemetry artifacts:\n";
        for (const std::string &p : session->finish())
            std::cout << "#   " << p << "\n";
    }
    return 0;
}
