/**
 * @file
 * One-shot driver regenerating the synthetic-figure data of every
 * sweep-based paper plot (Figs 11-14, 16, 17) in a single invocation.
 *
 * All sweeps run on the persistent work-stealing pool and through the
 * sweep result cache, so `bench_all --result-cache DIR` twice is a
 * cold run followed by a warm replay: the second invocation must
 * produce byte-identical stdout in a fraction of the time (the CI
 * sweep-cache-smoke job pins both properties).
 *
 * Figure data goes to stdout (byte-deterministic); wall-clock timing
 * goes to stderr so it never perturbs the output comparison.
 *
 * Extra flag on top of the shared harness flags:
 *   --smoke  tiny configuration (64 packets/PE, 3 rates, 2 patterns)
 *            for CI; the full grid otherwise.
 */

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep_cache.hpp"

using namespace fasttrack;

namespace {

struct AllConfig
{
    std::vector<TrafficPattern> patterns;
    std::vector<double> rates;
    std::uint32_t packetsPerPe = 1024;
    std::vector<std::uint32_t> varyDSides;
    double histRate = 0.08;
};

AllConfig
fullConfig()
{
    AllConfig cfg;
    cfg.patterns.assign(std::begin(kAllPatterns),
                        std::end(kAllPatterns));
    cfg.rates = injectionRateGrid();
    cfg.packetsPerPe = 1024;
    cfg.varyDSides = {4, 8, 16};
    return cfg;
}

AllConfig
smokeConfig()
{
    AllConfig cfg;
    cfg.patterns = {TrafficPattern::random, TrafficPattern::transpose};
    cfg.rates = {0.05, 0.20, 0.50};
    cfg.packetsPerPe = 64;
    cfg.varyDSides = {4, 8};
    cfg.histRate = 0.05;
    return cfg;
}

/** Figs 11+12: per-pattern rate sweep of the standard lineup; one
 *  table carrying both the sustained-rate and avg-latency series. */
void
runRateSweeps(const AllConfig &cfg)
{
    const auto lineup = standardLineup(8);
    for (TrafficPattern pattern : cfg.patterns) {
        Table table(std::string(toString(pattern)) +
                    ": sustained rate / avg latency by injection rate");
        std::vector<std::string> header{"inj-rate"};
        for (const auto &nut : lineup)
            header.push_back(nut.label + " rate");
        for (const auto &nut : lineup)
            header.push_back(nut.label + " lat");
        table.setHeader(header);

        std::vector<std::vector<SweepPoint>> sweeps;
        for (const auto &nut : lineup)
            sweeps.push_back(injectionSweep(nut, pattern, cfg.rates,
                                            cfg.packetsPerPe));

        for (std::size_t r = 0; r < cfg.rates.size(); ++r) {
            std::vector<std::string> row{Table::num(cfg.rates[r], 2)};
            for (const auto &sweep : sweeps)
                row.push_back(
                    Table::num(sweep[r].result.sustainedRate(), 4));
            for (const auto &sweep : sweeps)
                row.push_back(
                    Table::num(sweep[r].result.avgLatency(), 1));
            table.addRow(row);
        }
        table.print(std::cout);
        std::cout << "\n";
    }
}

/** Fig 13: iso-wiring lineup under RANDOM traffic. */
void
runIsoWiring(const AllConfig &cfg)
{
    const auto lineup = isoWiringLineup(8);
    Table table("iso-wiring lineup: sustained rate by injection rate "
                "(RANDOM)");
    std::vector<std::string> header{"inj-rate"};
    for (const auto &nut : lineup)
        header.push_back(nut.label);
    table.setHeader(header);

    std::vector<std::vector<SweepPoint>> sweeps;
    for (const auto &nut : lineup)
        sweeps.push_back(injectionSweep(nut, TrafficPattern::random,
                                        cfg.rates, cfg.packetsPerPe));
    for (std::size_t r = 0; r < cfg.rates.size(); ++r) {
        std::vector<std::string> row{Table::num(cfg.rates[r], 2)};
        for (const auto &sweep : sweeps)
            row.push_back(
                Table::num(sweep[r].result.sustainedRate(), 4));
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n";
}

/** Fig 14: saturation throughput of the iso-wiring lineup. */
void
runSaturation(const AllConfig &cfg)
{
    const auto lineup = isoWiringLineup(8);
    Table table("saturation throughput (pkt/cycle/PE) at 100% offered "
                "load");
    std::vector<std::string> header{"pattern"};
    for (const auto &nut : lineup)
        header.push_back(nut.label);
    table.setHeader(header);
    for (TrafficPattern pattern : cfg.patterns) {
        std::vector<std::string> row{std::string(toString(pattern))};
        for (const auto &nut : lineup) {
            const SynthResult res =
                saturationRun(nut, pattern, cfg.packetsPerPe);
            row.push_back(Table::num(res.sustainedRate(), 4));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n";
}

/** Fig 16: latency distribution summary at low injection. */
void
runLatencySummary(const AllConfig &cfg)
{
    const auto lineup = standardLineup(8);
    Table table("latency summary (cycles), RANDOM @ " +
                Table::num(cfg.histRate, 2) + " injection");
    table.setHeader({"NoC", "mean", "p50", "p99", "worst"});
    for (const auto &nut : lineup) {
        SyntheticWorkload workload;
        workload.pattern = TrafficPattern::random;
        workload.injectionRate = cfg.histRate;
        workload.packetsPerPe = cfg.packetsPerPe;
        const SynthResult res =
            cachedRunSynthetic(nut.config, nut.channels, workload);
        const auto &h = res.stats.totalLatency;
        table.addRow({nut.label, Table::num(h.mean(), 1),
                      Table::num(h.percentile(50)),
                      Table::num(h.percentile(99)),
                      Table::num(h.max())});
    }
    table.print(std::cout);
    std::cout << "\n";
}

/** Fig 17: sustained rate vs express length D (RANDOM @50%). */
void
runVaryD(const AllConfig &cfg)
{
    for (bool depopulated : {false, true}) {
        Table table(depopulated
                        ? "vary-D, R=D (fully depopulated)"
                        : "vary-D, R=1 (fully populated)");
        std::vector<std::string> header{"D"};
        for (std::uint32_t n : cfg.varyDSides)
            header.push_back(std::to_string(n * n) + "-PE");
        table.setHeader(header);

        std::uint32_t max_side = 0;
        for (std::uint32_t n : cfg.varyDSides)
            max_side = std::max(max_side, n);
        for (std::uint32_t d = 0; d <= max_side / 2; ++d) {
            std::vector<std::string> row{std::to_string(d)};
            for (std::uint32_t n : cfg.varyDSides) {
                if (d > n / 2 ||
                    (depopulated && d > 1 && n % d != 0)) {
                    row.push_back(Table::na());
                    continue;
                }
                const NocConfig noc =
                    d == 0 ? NocConfig::hoplite(n)
                           : NocConfig::fastTrack(n, d,
                                                  depopulated ? d : 1);
                SyntheticWorkload workload;
                workload.pattern = TrafficPattern::random;
                workload.injectionRate = 0.5;
                workload.packetsPerPe =
                    n >= 16 ? cfg.packetsPerPe / 4 : cfg.packetsPerPe;
                const SynthResult res =
                    cachedRunSynthetic(noc, 1, workload);
                row.push_back(Table::num(res.sustainedRate(), 4));
            }
            table.addRow(row);
        }
        table.print(std::cout);
        std::cout << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip --smoke before handing the rest to the shared parser.
    bool smoke = false;
    std::vector<char *> args;
    args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
            continue;
        }
        args.push_back(argv[i]);
    }
    bench::parseArgs(static_cast<int>(args.size()), args.data());
    const AllConfig cfg = smoke ? smokeConfig() : fullConfig();

    bench::banner(
        std::string("bench_all: synthetic sweep data, Figs 11-14/16/17"
                    " (") +
            (smoke ? "smoke" : "full") + " grid)",
        "one driver, every sweep figure; cached reruns must be "
        "byte-identical");

    const auto start = std::chrono::steady_clock::now();
    runRateSweeps(cfg);
    runIsoWiring(cfg);
    runSaturation(cfg);
    runLatencySummary(cfg);
    runVaryD(cfg);
    const auto elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();

    const auto stats = sweepCache().stats();
    std::cerr << "bench_all: " << elapsed << " s, cache hits "
              << stats.hits << " (disk " << stats.diskHits
              << "), misses " << stats.misses << ", stores "
              << stats.stores << "\n";
    return 0;
}
