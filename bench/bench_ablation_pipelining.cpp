/**
 * @file
 * Ablation (paper Section V + Section VII HyperFlex discussion):
 * extra pipeline registers on the NoC links raise the clock but add a
 * cycle of latency per hop. Throughput-bound traffic gains wall-clock
 * bandwidth; latency-bound (dataflow) workloads can lose. This bench
 * quantifies both sides.
 */

#include <iostream>

#include "bench_util.hpp"
#include "fpga/area_model.hpp"
#include "sim/simulation.hpp"
#include "workloads/dataflow.hpp"

using namespace fasttrack;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner(
        "Ablation: link pipelining (HyperFlex-style) on FT(64,2,1) "
        "and Hoplite",
        "clock rises toward the router-logic limit; cycle counts rise "
        "with per-hop latency; bandwidth in Mpkts/s improves, "
        "latency-bound dataflow in ns worsens");

    AreaModel area;
    const LuDagParams lu_params{"lu", 4096, 12.0, 1.8, 3, 91};
    const DataflowDag dag = sparseLuDag(lu_params);
    const Trace lu_trace = dataflowTrace(dag, 8);

    Table table("effect of extra link registers (256b, 8x8, RANDOM "
                "@100% + LU dataflow)");
    table.setHeader({"NoC", "stages", "MHz", "FFs",
                     "rate(pkt/cyc/PE)", "Mpkts/s", "LU cycles",
                     "LU time(us)"});

    for (bool ft : {true, false}) {
        for (std::uint32_t stages : {0u, 1u, 2u, 4u}) {
            NocConfig cfg =
                ft ? NocConfig::fastTrack(8, 2, 1) : NocConfig::hoplite(8);
            cfg.shortLinkStages = stages;
            cfg.expressLinkStages = stages;

            SyntheticWorkload workload;
            workload.pattern = TrafficPattern::random;
            workload.injectionRate = 1.0;
            workload.packetsPerPe = 512;
            const SynthResult synth = runSynthetic(cfg, 1, workload);

            const TraceResult lu = runTrace(cfg, 1, lu_trace);

            const NocCost cost = area.nocCost(cfg.toSpec(256));
            const double mpkts = synth.sustainedRate() *
                                 cfg.pes() * cost.frequencyMhz;
            const double lu_us = static_cast<double>(lu.completion) /
                                 cost.frequencyMhz;
            table.addRow({cfg.describe(), Table::num(
                              static_cast<std::uint64_t>(stages)),
                          Table::num(cost.frequencyMhz, 0),
                          Table::num(cost.ffs),
                          Table::num(synth.sustainedRate(), 4),
                          Table::num(mpkts, 1),
                          Table::num(lu.completion),
                          Table::num(lu_us, 1)});
        }
    }
    table.print(std::cout);
    return 0;
}
