/**
 * @file
 * Fig 15b reproduction: graph-analytics vertex-push traces. Road
 * networks (spatially partitioned, local traffic) should see little
 * benefit; power-law web/social graphs should scale best at large PE
 * counts.
 */

#include <iostream>

#include "bench_trace_util.hpp"
#include "bench_util.hpp"
#include "workloads/graph_analytics.hpp"

using namespace fasttrack;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner(
        "Fig 15b: graph analytics trace speedups (best FastTrack vs "
        "Hoplite)",
        "up to ~2.8x, best scaling at 256 PEs; roadNet-CA stays near "
        "1x (local traffic)");

    const std::uint32_t sides[] = {4, 8, 16}; // 16..256 PEs

    Table table("speedup by graph and PE count");
    std::vector<std::string> header{"graph"};
    for (std::uint32_t n : sides)
        header.push_back(std::to_string(n * n) + "-PE");
    header.push_back("best cfg @256");
    table.setHeader(header);

    for (const GraphBenchmark &bench_params : graphCatalog()) {
        const Graph graph = bench_params.build();
        std::vector<std::string> row{bench_params.name};
        std::string best;
        for (std::uint32_t n : sides) {
            const Trace trace = graphPushTrace(
                graph, n, defaultPartition(bench_params));
            const bench::TraceSpeedup s = bench::traceSpeedup(trace);
            row.push_back(Table::num(s.speedup(), 2));
            best = s.bestConfig;
        }
        row.push_back(best);
        table.addRow(row);
    }
    table.print(std::cout);
    return 0;
}
