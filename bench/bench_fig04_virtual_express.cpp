/**
 * @file
 * Fig 4 reproduction: achievable frequency of a registered wire of
 * varying SLICE distance with 0-8 intermediate LUT hops (virtual
 * express links, where every hop pays the fabric exit/entry penalty).
 */

#include <iostream>

#include "bench_util.hpp"
#include "fpga/wire_model.hpp"

using namespace fasttrack;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner(
        "Fig 4: virtual express links - frequency vs distance x hops",
        "hops=0 degrades from ~2 GHz (theoretical) to ~250 MHz at 256 "
        "SLICEs; any LUT hop costs heavily; multi-hop floors ~200 MHz");

    WireModel wires;
    const std::uint32_t distances[] = {2, 4, 8, 16, 32, 64, 128, 256};
    const std::uint32_t hops[] = {0, 1, 2, 3, 4, 5, 6, 7, 8};

    Table table("frequency (MHz); ceiling " +
                Table::num(wires.device().clockCeilingMhz, 0) +
                " MHz marked *");
    std::vector<std::string> header{"hops\\dist"};
    for (auto d : distances)
        header.push_back(std::to_string(d));
    table.setHeader(header);

    for (auto h : hops) {
        std::vector<std::string> row{std::to_string(h)};
        for (auto d : distances) {
            const double mhz = wires.virtualExpressMhz(d, h);
            std::string cell = Table::num(mhz, 0);
            if (mhz > wires.device().clockCeilingMhz)
                cell += "*";
            row.push_back(cell);
        }
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\nfull-chip traversal (256 SLICEs, 0 hops): "
              << Table::num(wires.virtualExpressMhz(256, 0), 0)
              << " MHz (paper: ~250 MHz)\n";
    return 0;
}
