/**
 * @file
 * Shared machinery for the Fig 15 accelerator-trace benches: run a
 * trace on baseline Hoplite and on each candidate FastTrack topology,
 * and report the best-FastTrack speedup, as the paper does.
 */

#ifndef FT_BENCH_BENCH_TRACE_UTIL_HPP
#define FT_BENCH_BENCH_TRACE_UTIL_HPP

#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "sim/simulation.hpp"

namespace fasttrack::bench {

/** FastTrack configurations the paper would sweep for a given size. */
inline std::vector<NocConfig>
fastTrackCandidates(std::uint32_t n)
{
    std::vector<NocConfig> configs;
    if (n < 4) {
        configs.push_back(NocConfig::fastTrack(n, 1, 1));
        return configs;
    }
    configs.push_back(NocConfig::fastTrack(n, 2, 1));
    configs.push_back(NocConfig::fastTrack(n, 2, 2));
    if (n >= 8)
        configs.push_back(NocConfig::fastTrack(n, 3, 1));
    if (n >= 16)
        configs.push_back(NocConfig::fastTrack(n, 4, 1));
    return configs;
}

/** Outcome of one benchmark x PE-count cell. */
struct TraceSpeedup
{
    Cycle hopliteCycles = 0;
    Cycle bestFtCycles = 0;
    std::string bestConfig;

    double speedup() const
    {
        return bestFtCycles
                   ? static_cast<double>(hopliteCycles) /
                         static_cast<double>(bestFtCycles)
                   : 0.0;
    }
};

/** Replay @p trace on Hoplite and all FastTrack candidates (each
 *  candidate on its own core). Honours the --snapshot-every /
 *  --snapshot-dir / --resume harness flags: each (trace, config)
 *  replay checkpoints into — and resumes from — its own
 *  subdirectory, named from the trace and config labels. With
 *  --shard-cycles (and no checkpoint flags) each replay instead runs
 *  as temporal shards across the --remote fleet — bit-identical to
 *  the local replay (docs/distributed.md). */
inline TraceSpeedup
traceSpeedup(const Trace &trace, Cycle max_cycles = 50'000'000)
{
    std::vector<NocConfig> configs{NocConfig::hoplite(trace.n)};
    for (const NocConfig &cfg : fastTrackCandidates(trace.n))
        configs.push_back(cfg);

    const bool sharded = shardCycles() != 0 && remoteConfigured() &&
                         snapshotEvery() == 0 && resumeDir().empty();
    const std::vector<Cycle> cycles = parallelMap(
        configs,
        [&](const NocConfig &cfg) {
            if (sharded) {
                RunRequest run;
                run.config = &cfg;
                run.trace = &trace;
                run.sim.maxCycles = max_cycles;
                return runShardedSim(run, shardCycles())
                    .trace.completion;
            }
            const std::string run =
                fileSafeLabel(trace.name + "_" + cfg.describe());
            SimConfig sim{.maxCycles = max_cycles};
            if (snapshotEvery() != 0) {
                sim.snapshotEveryCycles = snapshotEvery();
                sim.snapshotDir = snapshotDir() + "/" + run;
            }
            if (!resumeDir().empty())
                sim.resumeFrom = resumeDir() + "/" + run;
            return runSim({.config = &cfg,
                           .trace = &trace,
                           .sim = sim})
                .trace.completion;
        },
        /*threads=*/0, "traceSpeedup");

    TraceSpeedup out;
    out.hopliteCycles = cycles[0];
    for (std::size_t i = 1; i < configs.size(); ++i) {
        if (out.bestFtCycles == 0 || cycles[i] < out.bestFtCycles) {
            out.bestFtCycles = cycles[i];
            out.bestConfig = configs[i].describe();
        }
    }
    return out;
}

} // namespace fasttrack::bench

#endif // FT_BENCH_BENCH_TRACE_UTIL_HPP
