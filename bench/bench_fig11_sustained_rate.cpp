/**
 * @file
 * Fig 11 reproduction: sustained rate vs injection rate for a 64-PE
 * NoC under the four synthetic patterns, comparing FT(64,2,1),
 * FT(64,2,2) and baseline Hoplite (1K packets/PE).
 */

#include <iostream>

#include "bench_util.hpp"

#include "common/ascii_chart.hpp"
#include "sim/experiment.hpp"

using namespace fasttrack;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner(
        "Fig 11: sustained rate (pkt/cycle/PE) vs injection rate, "
        "64 PEs",
        "FT(64,2,1) up to 2.5x Hoplite on RANDOM, 2x BITCOMPL, 1.5x "
        "LOCAL, ~1x TRANSPOSE; no win below 10% injection; R=2 sits "
        "between");

    const auto lineup = standardLineup(8);
    const auto rates = injectionRateGrid();

    for (TrafficPattern pattern : kAllPatterns) {
        Table table(std::string(toString(pattern)) +
                    ": sustained rate by injection rate");
        std::vector<std::string> header{"inj-rate"};
        for (const auto &nut : lineup)
            header.push_back(nut.label);
        table.setHeader(header);

        std::vector<std::vector<SweepPoint>> sweeps;
        for (const auto &nut : lineup)
            sweeps.push_back(injectionSweep(nut, pattern, rates));

        for (std::size_t r = 0; r < rates.size(); ++r) {
            std::vector<std::string> row{Table::num(rates[r], 2)};
            for (const auto &sweep : sweeps)
                row.push_back(
                    Table::num(sweep[r].result.sustainedRate(), 4));
            table.addRow(row);
        }
        table.print(std::cout);
        std::cout << "\n";

        if (!Table::csvMode()) {
            AsciiChart chart(std::string(toString(pattern)) +
                             " (sustained rate vs injection rate)");
            chart.setLogX(true);
            chart.setAxisLabels("injection rate", "pkt/cyc/PE");
            for (std::size_t c = 0; c < lineup.size(); ++c) {
                std::vector<std::pair<double, double>> pts;
                for (const SweepPoint &p : sweeps[c])
                    pts.emplace_back(p.rate,
                                     p.result.sustainedRate());
                chart.addSeries(lineup[c].label, std::move(pts));
            }
            chart.print(std::cout);
            std::cout << "\n";
        }
    }
    return 0;
}
