/**
 * @file
 * Ablation of the livelock-avoidance rule (Section IV-D): the paper's
 * turn-priority arbitration (W->S turns beat ring traffic) versus a
 * naive ring-first priority.
 *
 * The adversarial workload floods one column with continuous
 * south-bound ring traffic while a West packet stream tries to turn
 * into that column. With turn priority, turning packets displace ring
 * packets and make progress; ring-first lets the flood starve them,
 * so their latency scales with the flood duration instead of the
 * network diameter.
 */

#include <iostream>
#include <optional>

#include "bench_util.hpp"
#include "noc/network.hpp"

using namespace fasttrack;

namespace {

/** Run the column-flood scenario; returns worst latency of the
 *  turning victims (or 0 if none delivered). */
std::uint64_t
columnFlood(bool turn_priority, Cycle flood_cycles,
            std::uint64_t &delivered_victims)
{
    NocConfig cfg = NocConfig::hoplite(8);
    cfg.turnPriority = turn_priority;
    Network noc(cfg);

    const std::uint32_t n = 8;
    const std::uint32_t victim_col = 3;

    std::uint64_t worst = 0;
    delivered_victims = 0;
    noc.setDeliverCallback([&](const Packet &p, Cycle when) {
        if (p.tag == 1) {
            ++delivered_victims;
            worst = std::max(worst, when - p.created);
        }
    });

    std::uint64_t next_id = 1;
    for (Cycle t = 0; t < flood_cycles; ++t) {
        // Flood: every node in the victim column streams packets far
        // down its own column, keeping the S links busy.
        for (std::uint32_t y = 0; y < n; ++y) {
            const NodeId src = toNodeId(
                {static_cast<std::uint16_t>(victim_col),
                 static_cast<std::uint16_t>(y)}, n);
            if (!noc.hasPendingOffer(src)) {
                Packet p;
                p.id = next_id++;
                p.src = src;
                p.dst = toNodeId(
                    {static_cast<std::uint16_t>(victim_col),
                     static_cast<std::uint16_t>((y + n / 2) % n)}, n);
                p.created = noc.now();
                noc.offer(p);
            }
        }
        // Victims: a West stream that must turn South at the flooded
        // column.
        const NodeId vsrc = toNodeId({0, 0}, n);
        if (!noc.hasPendingOffer(vsrc)) {
            Packet p;
            p.id = next_id++;
            p.src = vsrc;
            p.dst = toNodeId({static_cast<std::uint16_t>(victim_col), 5},
                             n);
            p.created = noc.now();
            p.tag = 1;
            noc.offer(p);
        }
        noc.step();
    }
    noc.drain(1'000'000);
    return worst;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner(
        "Ablation: turn-priority livelock rule vs ring-first priority "
        "(column flood, Hoplite 8x8)",
        "turn priority keeps the victim tail at the contention-free path "
        "length; ring-first multiplies it by repeated full-ring laps");

    Table table("worst victim latency vs flood duration");
    table.setHeader({"flood cycles", "turn-priority worst",
                     "ring-first worst", "victims delivered (turn/ring)"});

    for (Cycle flood : {Cycle{1000}, Cycle{5000}, Cycle{20000}}) {
        std::uint64_t dv_turn = 0, dv_ring = 0;
        const std::uint64_t w_turn = columnFlood(true, flood, dv_turn);
        const std::uint64_t w_ring = columnFlood(false, flood, dv_ring);
        table.addRow({Table::num(static_cast<std::uint64_t>(flood)),
                      Table::num(w_turn), Table::num(w_ring),
                      Table::num(dv_turn) + "/" + Table::num(dv_ring)});
    }
    table.print(std::cout);
    return 0;
}
