/**
 * @file
 * Fig 15d reproduction: multi-processor overlay (SNIPER/PARSEC
 * analogs) on a 32-PE overlay. The paper runs 32 worker PEs; we host
 * them on a 6x6 torus with 4 idle nodes.
 */

#include <iostream>

#include "bench_trace_util.hpp"
#include "bench_util.hpp"
#include "workloads/mp_overlay.hpp"

using namespace fasttrack;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner(
        "Fig 15d: multiprocessor overlay speedups @ 32 worker PEs "
        "(best FastTrack vs Hoplite)",
        "~2x for communication-bound pipeline codes (x264, vips, "
        "dedup); ~1x for compute-bound / local ones (freqmine, "
        "blackscholes)");

    const std::uint32_t n = 6;           // 36-node torus
    const std::uint32_t active_pes = 32; // paper's worker count

    Table table("speedup by benchmark");
    table.setHeader({"benchmark", "Hoplite cyc", "best FT cyc",
                     "speedup", "best cfg"});

    for (const ParsecBenchmark &params : parsecCatalog()) {
        const Trace trace = mpOverlayTrace(params, n, active_pes);
        const bench::TraceSpeedup s = bench::traceSpeedup(trace);
        table.addRow({params.name, Table::num(s.hopliteCycles),
                      Table::num(s.bestFtCycles),
                      Table::num(s.speedup(), 2), s.bestConfig});
    }
    table.print(std::cout);
    return 0;
}
